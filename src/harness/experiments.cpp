#include "harness/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "circuit/builders.hpp"
#include "circuit/transpile/cache_blocking.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/units.hpp"
#include "harness/paper_reference.hpp"
#include "machine/job.hpp"
#include "perf/runner.hpp"

namespace qsv {

namespace {

/// The Hadamard/SWAP benchmarks and the fig-5 profiles all use the paper's
/// 38-qubit register on 64 standard nodes (64 GiB slice per node).
constexpr int kBenchQubits = 38;
constexpr int kBenchNodes = 64;
constexpr int kBenchGates = 50;

JobConfig bench_job(CpuFreq freq = CpuFreq::kMedium2000) {
  JobConfig job;
  job.num_qubits = kBenchQubits;
  job.node_kind = NodeKind::kStandard;
  job.freq = freq;
  job.nodes = kBenchNodes;
  return job;
}

DistOptions policy_opts(CommPolicy policy) {
  DistOptions o;
  o.policy = policy;
  return o;
}

std::string ratio_str(double ours, double base) {
  return fmt::fixed(ours / base, 3);
}

}  // namespace

Circuit builtin_qft(int num_qubits) {
  QftOptions opts;
  opts.ascending = true;
  opts.fused_phases = true;
  opts.final_swaps = true;
  Circuit c = build_qft(num_qubits, opts);
  c.set_name("qft_builtin");
  return c;
}

Circuit fast_qft(int num_qubits, int local_qubits) {
  const int threshold = std::max(1, local_qubits - 2);
  Circuit c = build_cache_blocked_qft(num_qubits, local_qubits, threshold);
  c.set_name("qft_fast");
  return c;
}

Fig2Result experiment_fig2(const MachineModel& m) {
  Fig2Result res;
  res.table = Table("Fig 2 — QFT runtimes vs register size (built-in QFT)");
  res.table.header({"qubits", "setup", "nodes", "runtime", "energy", "CU"});

  for (int n = 33; n <= 44; ++n) {
    for (NodeKind kind : {NodeKind::kStandard, NodeKind::kHighMem}) {
      // Skip sizes that exceed the machine (paper: high-mem tops out at 41).
      bool fit = true;
      try {
        (void)min_nodes(m, n, kind);
      } catch (const Error&) {
        fit = false;
      }
      if (!fit) {
        continue;
      }
      for (CpuFreq freq : {CpuFreq::kMedium2000, CpuFreq::kHigh2250}) {
        const JobConfig job = make_min_job(m, n, kind, freq);
        const Circuit qft = builtin_qft(n);
        const RunReport r =
            run_model(qft, m, job, policy_opts(CommPolicy::kBlocking));
        res.rows.push_back(Fig2Row{n, kind, freq, job.nodes, r});
        res.table.row({std::to_string(n),
                       std::string(node_kind_name(kind)) + " " +
                           freq_name(freq),
                       std::to_string(job.nodes), fmt::seconds(r.runtime_s),
                       fmt::energy_j(r.total_energy_j()),
                       fmt::fixed(r.cu, 1)});
      }
    }
  }
  return res;
}

Table experiment_fig3(const MachineModel& m) {
  const Fig2Result fig2 = experiment_fig2(m);

  Table t("Fig 3 — runtime/energy relative to the default setup "
          "(standard nodes, 2.00 GHz)");
  t.header({"qubits", "setup", "runtime ratio", "energy ratio", "CU ratio"});

  // Index the default per register size.
  std::map<int, const Fig2Row*> defaults;
  for (const Fig2Row& r : fig2.rows) {
    if (r.kind == NodeKind::kStandard && r.freq == CpuFreq::kMedium2000) {
      defaults[r.qubits] = &r;
    }
  }

  for (const Fig2Row& r : fig2.rows) {
    const auto it = defaults.find(r.qubits);
    if (it == defaults.end()) {
      continue;
    }
    const Fig2Row& base = *it->second;
    if (&r == &base) {
      continue;
    }
    t.row({std::to_string(r.qubits),
           std::string(node_kind_name(r.kind)) + " " + freq_name(r.freq),
           ratio_str(r.report.runtime_s, base.report.runtime_s),
           ratio_str(r.report.total_energy_j(), base.report.total_energy_j()),
           ratio_str(r.report.cu, base.report.cu)});
  }
  return t;
}

Table1Result experiment_table1(const MachineModel& m,
                               const std::vector<int>& qubits) {
  Table1Result res;
  res.table = Table("Table 1 — time/energy per gate, Hadamard benchmark "
                    "(38 qubits, 64 nodes)");
  res.table.header({"qubit", "t blk", "E blk", "t non-blk", "E non-blk",
                    "paper t blk", "paper E blk"});

  const JobConfig job = bench_job();
  for (int q : qubits) {
    const Circuit c = build_hadamard_bench(kBenchQubits, q, kBenchGates);
    Table1Result::Row row;
    row.qubit = q;
    row.blocking = run_model(c, m, job, policy_opts(CommPolicy::kBlocking));
    row.nonblocking =
        run_model(c, m, job, policy_opts(CommPolicy::kNonBlocking));

    std::string paper_t = "-";
    std::string paper_e = "-";
    for (const auto& p : paper::kTable1) {
      if (p.qubit == q) {
        paper_t = p.blocking_time_s < 0 ? "n/a"
                                        : fmt::seconds(p.blocking_time_s);
        paper_e = fmt::energy_j(p.blocking_energy_j);
      }
    }
    res.table.row({std::to_string(q),
                   fmt::seconds(row.blocking.time_per_gate()),
                   fmt::energy_j(row.blocking.energy_per_gate()),
                   fmt::seconds(row.nonblocking.time_per_gate()),
                   fmt::energy_j(row.nonblocking.energy_per_gate()), paper_t,
                   paper_e});
    res.rows.push_back(std::move(row));
  }
  return res;
}

Fig4Result experiment_fig4(const MachineModel& m) {
  Fig4Result res;
  res.table = Table("Fig 4 — SWAP benchmark, energy per gate "
                    "(38 qubits, 64 nodes)");
  res.table.header({"targets", "t blk", "E blk", "t non-blk", "E non-blk"});

  const JobConfig job = bench_job();
  for (int local : {0, 4, 8, 12, 16}) {
    for (int dist : {35, 36, 37}) {
      const Circuit c = build_swap_bench(kBenchQubits, local, dist,
                                         kBenchGates);
      Fig4Result::Row row;
      row.local_target = local;
      row.distributed_target = dist;
      row.blocking = run_model(c, m, job, policy_opts(CommPolicy::kBlocking));
      row.nonblocking =
          run_model(c, m, job, policy_opts(CommPolicy::kNonBlocking));
      // Built up in place: GCC 12's -Wrestrict misfires on the equivalent
      // operator+ chain (GCC bug 105329).
      std::string targets = "(";
      targets += std::to_string(local);
      targets += ',';
      targets += std::to_string(dist);
      targets += ')';
      res.table.row({targets,
                     fmt::seconds(row.blocking.time_per_gate()),
                     fmt::energy_j(row.blocking.energy_per_gate()),
                     fmt::seconds(row.nonblocking.time_per_gate()),
                     fmt::energy_j(row.nonblocking.energy_per_gate())});
      res.rows.push_back(std::move(row));
    }
  }
  return res;
}

Fig5Result experiment_fig5(const MachineModel& m) {
  Fig5Result res;
  res.table = Table("Fig 5 — runtime profiles (38 qubits, 64 nodes)");
  res.table.header({"benchmark", "MPI", "memory", "compute"});

  const JobConfig job = bench_job();
  const int local = kBenchQubits - 6;  // 64 nodes -> 32 local qubits

  auto add = [&](const std::string& name, const Circuit& c,
                 CommPolicy policy) {
    const RunReport r = run_model(c, m, job, policy_opts(policy));
    res.rows.push_back(Fig5Result::Row{name, r.phases});
    res.table.row({name, fmt::percent(r.phases.mpi_fraction()),
                   fmt::percent(r.phases.memory_fraction()),
                   fmt::percent(r.phases.compute_fraction())});
  };

  add("hadamard (last qubit)",
      build_hadamard_bench(kBenchQubits, kBenchQubits - 1, kBenchGates),
      CommPolicy::kBlocking);
  add("QFT built-in", builtin_qft(kBenchQubits), CommPolicy::kBlocking);
  add("QFT cache-blocked", fast_qft(kBenchQubits, local),
      CommPolicy::kNonBlocking);
  return res;
}

Table2Result experiment_table2(const MachineModel& m) {
  Table2Result res;
  res.table = Table("Table 2 — large QFT runs, built-in vs Fast");
  res.table.header({"qubits", "nodes", "variant", "runtime", "energy",
                    "paper runtime", "paper energy"});

  for (const auto& [qubits, nodes] :
       std::vector<std::pair<int, int>>{{43, 2048}, {44, 4096}}) {
    JobConfig job;
    job.num_qubits = qubits;
    job.node_kind = NodeKind::kStandard;
    job.freq = CpuFreq::kMedium2000;
    job.nodes = nodes;
    const int local = qubits - static_cast<int>(std::log2(nodes));

    for (bool fast : {false, true}) {
      const Circuit c = fast ? fast_qft(qubits, local) : builtin_qft(qubits);
      const CommPolicy policy =
          fast ? CommPolicy::kNonBlocking : CommPolicy::kBlocking;
      const RunReport r = run_model(c, m, job, policy_opts(policy));

      std::string paper_t = "-";
      std::string paper_e = "-";
      for (const auto& p : paper::kTable2) {
        if (p.qubits == qubits && p.fast == fast) {
          paper_t = fmt::seconds(p.runtime_s);
          paper_e = fmt::energy_j(p.energy_j);
        }
      }
      res.rows.push_back(Table2Result::Row{qubits, nodes, fast, r});
      res.table.row({std::to_string(qubits), std::to_string(nodes),
                     fast ? "Fast" : "Built-in", fmt::seconds(r.runtime_s),
                     fmt::energy_j(r.total_energy_j()), paper_t, paper_e});
    }
  }
  return res;
}

Table experiment_half_exchange(const MachineModel& m) {
  Table t("Ablation — half-exchange distributed SWAPs (future work §4)");
  t.header({"qubits", "nodes", "variant", "runtime", "energy",
            "bytes/rank total"});

  for (const auto& [qubits, nodes] :
       std::vector<std::pair<int, int>>{{43, 2048}, {44, 4096}}) {
    JobConfig job;
    job.num_qubits = qubits;
    job.node_kind = NodeKind::kStandard;
    job.freq = CpuFreq::kMedium2000;
    job.nodes = nodes;
    const int local = qubits - static_cast<int>(std::log2(nodes));
    const Circuit c = fast_qft(qubits, local);

    for (bool half : {false, true}) {
      DistOptions opts;
      opts.policy = CommPolicy::kNonBlocking;
      opts.half_exchange_swaps = half;
      const RunReport r = run_model(c, m, job, opts);
      t.row({std::to_string(qubits), std::to_string(nodes),
             half ? "half-exchange" : "full-exchange",
             fmt::seconds(r.runtime_s), fmt::energy_j(r.total_energy_j()),
             fmt::bytes(r.traffic.bytes / static_cast<std::uint64_t>(nodes))});
    }
  }
  return t;
}

OverlapResult experiment_overlap(const MachineModel& m) {
  OverlapResult res;
  res.table = Table("Ablation — exchange pipeline: blocking vs non-blocking "
                    "vs overlapped (Fast QFT)");
  res.table.header({"qubits", "nodes", "policy", "runtime", "energy",
                    "MPI time", "overlap saved"});

  for (const auto& [qubits, nodes] :
       std::vector<std::pair<int, int>>{{43, 2048}, {44, 4096}}) {
    JobConfig job;
    job.num_qubits = qubits;
    job.node_kind = NodeKind::kStandard;
    job.freq = CpuFreq::kMedium2000;
    job.nodes = nodes;
    const int local = qubits - static_cast<int>(std::log2(nodes));
    const Circuit c = fast_qft(qubits, local);

    for (CommPolicy policy : {CommPolicy::kBlocking, CommPolicy::kNonBlocking,
                              CommPolicy::kOverlapped}) {
      const RunReport r = run_model(c, m, job, policy_opts(policy));
      res.rows.push_back(OverlapResult::Row{qubits, nodes, policy, r});
      res.table.row(
          {std::to_string(qubits), std::to_string(nodes),
           comm_policy_name(policy), fmt::seconds(r.runtime_s),
           fmt::energy_j(r.total_energy_j()), fmt::seconds(r.phases.mpi_s),
           r.overlapped_exchanges > 0 ? fmt::seconds(r.overlap_saved_s)
                                      : "-"});
    }
  }
  return res;
}

Table experiment_chunking(const MachineModel& m) {
  Table t("Ablation — MPI message cap (chunking of one 64 GiB exchange)");
  t.header({"message cap", "messages", "exchange time blk",
            "exchange time non-blk"});

  const JobConfig job = bench_job();
  const Circuit c =
      build_hadamard_bench(kBenchQubits, kBenchQubits - 1, 1);
  for (std::uint64_t cap :
       {units::GiB / 4, units::GiB / 2, units::GiB, 2 * units::GiB,
        4 * units::GiB}) {
    DistOptions opts;
    opts.max_message_bytes = cap;
    opts.policy = CommPolicy::kBlocking;
    const RunReport blk = run_model(c, m, job, opts);
    opts.policy = CommPolicy::kNonBlocking;
    const RunReport nb = run_model(c, m, job, opts);
    t.row({fmt::bytes(cap),
           std::to_string(blk.traffic.messages /
                          static_cast<std::uint64_t>(job.nodes)),
           fmt::seconds(blk.phases.mpi_s), fmt::seconds(nb.phases.mpi_s)});
  }
  return t;
}

}  // namespace qsv
