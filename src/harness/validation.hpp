// Structured reproduction checks: every quantitative claim the paper makes
// becomes a named check with an acceptance band; the calibration tests and
// the report generator consume the same list, so "the reproduction holds"
// is a machine-checkable statement.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "machine/machine.hpp"

namespace qsv {

struct Check {
  std::string id;           // e.g. "table1.q32.blocking.time_s"
  std::string description;  // the paper's claim
  double value = 0;         // what the model produced
  double lo = 0;            // acceptance band (inclusive)
  double hi = 0;

  [[nodiscard]] bool passed() const { return value >= lo && value <= hi; }
};

/// Runs every experiment and evaluates the full check list (~40 checks
/// across Tables 1-2 and Figs 2-5). Deterministic.
[[nodiscard]] std::vector<Check> validate_reproduction(const MachineModel& m);

/// Console table of checks with PASS/FAIL markers.
[[nodiscard]] Table render_checks(const std::vector<Check>& checks);

/// Full markdown report (summary, per-experiment sections, check table).
[[nodiscard]] std::string render_markdown_report(const MachineModel& m);

}  // namespace qsv
