#include "harness/integrity.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/types.hpp"
#include "dist/resilience.hpp"
#include "harness/experiments.hpp"
#include "machine/job.hpp"
#include "perf/resilience_model.hpp"
#include "perf/runner.hpp"

namespace qsv {

double guard_check_s(const MachineModel& m, int qubits, int nodes,
                     bool slice_crc) {
  QSV_REQUIRE(qubits >= 1 && qubits < 63, "bad qubit count");
  QSV_REQUIRE(nodes >= 1, "need at least one node");
  const double amps_per_rank = std::ldexp(1.0, qubits) / nodes;
  const double slice_bytes = amps_per_rank * kBytesPerAmp;
  // Same primitives the cost model charges per kGuard event: stream the
  // slice, 4 flops per amplitude for the norm accumulation, meet in a
  // scalar allreduce — plus the CRC pass at the integrity rate.
  double t = m.mem_time(slice_bytes, CpuFreq::kMedium2000) +
             m.compute_time(4 * amps_per_rank, CpuFreq::kMedium2000) +
             m.allreduce_time(nodes);
  if (slice_crc) {
    QSV_REQUIRE(m.integrity.crc_bw_bytes_per_s > 0,
                "integrity CRC bandwidth unset");
    t += slice_bytes / m.integrity.crc_bw_bytes_per_s;
  }
  return t;
}

double optimal_guard_cadence_s(double check_s, double sdc_rate_per_s) {
  QSV_REQUIRE(check_s > 0, "guard check cost must be positive");
  QSV_REQUIRE(sdc_rate_per_s > 0, "SDC rate must be positive");
  // Overhead (T/tau) g balanced against latency loss lambda T tau / 2:
  // the guard-cadence analogue of Young's checkpoint formula.
  return std::sqrt(2 * check_s / sdc_rate_per_s);
}

IntegritySweepResult experiment_integrity_sweep(const MachineModel& m) {
  QSV_REQUIRE(m.reliability.node_mtbf_s > 0,
              "integrity sweep needs a finite node MTBF "
              "(reliability.node_mtbf_s)");

  IntegritySweepResult res;
  res.table = Table(
      "Guard cadence vs expected energy under silent corruption "
      "(24 h QFT campaign, checkpointing at the Daly optimum; "
      "* = analytic optimum cadence)");
  res.table.header({"qubits", "nodes", "sdc/node-h", "cadence", "checks",
                    "overhead", "E[sdc]", "latency", "lost work", "E[wall]",
                    "E[energy]", "vs opt"});

  for (const auto& [qubits, nodes] :
       std::vector<std::pair<int, int>>{{43, 2048}, {44, 4096}}) {
    JobConfig job;
    job.num_qubits = qubits;
    job.node_kind = NodeKind::kStandard;
    job.freq = CpuFreq::kMedium2000;
    job.nodes = nodes;

    // A single QFT solves in minutes; the regime where both checkpointing
    // and guarding pay is the multi-hour campaign. Scale one priced QFT to
    // a ~24 h workload (the campaign is reps identical circuits, so runtime
    // and node energy scale linearly).
    const RunReport once = run_model(builtin_qft(qubits), m, job);
    const double reps = std::max(1.0, std::ceil(24 * 3600 / once.runtime_s));
    const double solve_s = once.runtime_s * reps;
    const double solve_energy_j = once.total_energy_j() * reps;
    const double solve_node_w = once.node_energy_j / once.runtime_s;

    const double g = guard_check_s(m, qubits, nodes, /*slice_crc=*/false);
    const double delta = checkpoint_write_s(m, qubits);
    const double tau_c = daly_interval_s(m.system_mtbf_s(nodes), delta);
    res.configs.push_back(
        IntegritySweepResult::Config{qubits, nodes, g, tau_c});

    const double ckpt_io_s = solve_s / tau_c * delta;
    const double restore_s = restart_cost_s(m, qubits);
    const double switches_w = m.switch_count(nodes) * m.switches.power_w;
    const double p_local = m.node_power(MachineModel::Phase::kLocal, job.freq,
                                        job.node_kind);
    const double p_idle = m.node_power(MachineModel::Phase::kIdle, job.freq,
                                       job.node_kind);
    const double p_io =
        m.node_power(MachineModel::Phase::kIo, job.freq, job.node_kind);

    for (const double rate_per_node_hour : {1e-5, 1e-4}) {
      const double lambda = rate_per_node_hour * nodes / 3600.0;
      const double tau_opt = optimal_guard_cadence_s(g, lambda);
      double opt_energy = 0;  // filled by the mult == 1.0 row (added first)

      auto add = [&](double cadence_s, bool optimum) {
        IntegritySweepResult::Row row;
        row.qubits = qubits;
        row.nodes = nodes;
        row.sdc_per_node_hour = rate_per_node_hour;
        row.cadence_s = cadence_s;
        row.optimum = optimum;
        row.checks =
            cadence_s > 0 ? std::ceil(solve_s / cadence_s) : 1.0;
        row.overhead_s = row.checks * g;
        row.expected_sdc = lambda * solve_s;
        // Detected half a cadence late on average; end-of-run-only checks
        // detect half the campaign late.
        row.detect_latency_s = cadence_s > 0 ? cadence_s / 2 : solve_s / 2;
        // Rollback replays from the last verified checkpoint: half a
        // checkpoint segment plus the detection latency, per event.
        row.lost_work_s =
            row.expected_sdc * (tau_c / 2 + row.detect_latency_s);
        row.wall_s = solve_s + ckpt_io_s + row.overhead_s +
                     row.lost_work_s + row.expected_sdc * restore_s;
        row.energy_j = solve_energy_j +
                       ckpt_io_s * (nodes * p_io + switches_w) +
                       row.overhead_s * (nodes * p_local + switches_w) +
                       row.lost_work_s * (solve_node_w + switches_w) +
                       row.expected_sdc * restore_s *
                           (nodes * p_idle + switches_w);
        if (optimum) {
          opt_energy = row.energy_j;
        }
        res.table.row(
            {std::to_string(qubits), std::to_string(nodes),
             fmt::fixed(rate_per_node_hour * 1e5, 0) + "e-5",
             cadence_s > 0 ? fmt::seconds(cadence_s) + (optimum ? " *" : "")
                           : "end-only",
             fmt::fixed(row.checks, 0), fmt::seconds(row.overhead_s),
             fmt::fixed(row.expected_sdc, 2),
             fmt::seconds(row.detect_latency_s),
             fmt::seconds(row.lost_work_s), fmt::seconds(row.wall_s),
             fmt::energy_j(row.energy_j),
             opt_energy > 0 ? fmt::fixed(row.energy_j / opt_energy, 3)
                            : "-"});
        res.rows.push_back(std::move(row));
      };

      add(tau_opt, true);  // first, so every row can report "vs opt"
      add(0.0, false);     // end-of-run check only
      for (const double mult : {0.125, 0.5, 2.0, 8.0}) {
        add(tau_opt * mult, false);
      }
    }
  }
  return res;
}

}  // namespace qsv
