// The paper's published numbers, used for side-by-side reporting in the
// bench binaries and as assertion targets in tests/test_calibration.cpp.
//
// Source: Adamski, Richings, Brown, "Energy Efficiency of Quantum
// Statevector Simulation at Scale", SC-W 2023.
#pragma once

namespace qsv::paper {

// --- Table 1: per-gate time/energy of the Hadamard benchmark -------------
// 38-qubit register on 64 standard nodes at 2.00 GHz; 50 gates per run.
// The blocking time for qubit 29 is blank in the paper's table.
struct Table1Row {
  int qubit;
  double blocking_time_s;    // <0 when not published
  double blocking_energy_j;
  double nonblocking_time_s;
  double nonblocking_energy_j;
};

inline constexpr Table1Row kTable1[] = {
    {29, -1.0, 15.3e3, 0.53, 15.0e3},
    {30, 0.59, 15.7e3, 0.74, 18.7e3},
    {31, 0.80, 20.8e3, 0.97, 24.2e3},
    {32, 9.63, 191e3, 8.82, 179e3},
};

/// "Up until qubit 29 the time per gate is roughly constant at 0.5 s, and
/// the energy is approximately 15 kJ."
inline constexpr double kTable1BaseTime = 0.50;
inline constexpr double kTable1BaseEnergy = 15e3;

// --- Fig 4: SWAP benchmark bands ------------------------------------------
// Same setup; 50 SWAP gates, local targets {0,4,8,12,16} x distributed
// targets {35,36,37}.
inline constexpr double kFig4BlockingTimeLo = 9.00;
inline constexpr double kFig4BlockingTimeHi = 9.75;
inline constexpr double kFig4BlockingEnergyLo = 180e3;
inline constexpr double kFig4BlockingEnergyHi = 195e3;
inline constexpr double kFig4NonblockingTimeLo = 8.25;
inline constexpr double kFig4NonblockingTimeHi = 9.00;
inline constexpr double kFig4NonblockingEnergyLo = 160e3;
inline constexpr double kFig4NonblockingEnergyHi = 180e3;

// --- Fig 5: runtime profiles ----------------------------------------------
/// Built-in QFT: "communication only takes up to 43% of runtime, and the
/// rest is split roughly 2:1 between memory access and computation."
inline constexpr double kFig5BuiltinMpiFraction = 0.43;
/// "we managed to reduce communication to 25%."
inline constexpr double kFig5CacheBlockedMpiFraction = 0.25;
/// "In the Hadamard benchmark MPI completely dominates the runtime."
inline constexpr double kFig5HadamardMpiFractionMin = 0.90;

// --- Table 2: large QFT runs ----------------------------------------------
struct Table2Col {
  int qubits;
  int nodes;
  bool fast;  // cache-blocked + non-blocking
  double runtime_s;
  double energy_j;
};

inline constexpr Table2Col kTable2[] = {
    {43, 2048, false, 417, 294e6},
    {43, 2048, true, 270, 206e6},
    {44, 4096, false, 476, 664e6},
    {44, 4096, true, 285, 431e6},
};

// --- §3.1 / Fig 3 qualitative bands ----------------------------------------
/// "The standard high frequency setup is consistently 5% to 10% faster than
/// the default, but it uses around 25% more energy."
inline constexpr double kHighFreqSpeedupLo = 0.05;
inline constexpr double kHighFreqSpeedupHi = 0.12;
inline constexpr double kHighFreqEnergyPenalty = 0.25;

/// "using 2.00 GHz instead of 2.25 GHz can save as much as 25% of energy at
/// 5% increase in runtime" (abstract).

/// "High memory nodes are slower, but less than twice as slow."
inline constexpr double kHighMemSlowdownMax = 2.0;

// --- Node-count anchors (§3.1) --------------------------------------------
inline constexpr int kMinNodes33Standard = 1;
inline constexpr int kMinNodes34Standard = 4;
inline constexpr int kMinNodes41HighMem = 256;
inline constexpr int kMinNodes44Standard = 4096;
inline constexpr int kMaxQubitsStandard = 44;
inline constexpr int kMaxQubitsHighMem = 41;

/// "32 messages are exchanged per distributed gate" (64 GB slice, 2 GB cap).
inline constexpr int kMessagesPerExchange64GiB = 32;

}  // namespace qsv::paper
