// Experiment definitions: one function per table/figure of the paper.
// Each returns both the rendered console table and the raw rows, so bench
// binaries can print and dump CSV, and tests can assert on values.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/table.hpp"
#include "machine/machine.hpp"
#include "perf/report.hpp"

namespace qsv {

/// The paper's "Built-in" workload: QuEST's QFT — ascending Hadamards,
/// fused controlled-phase layers, terminal bit-reversal SWAPs.
[[nodiscard]] Circuit builtin_qft(int num_qubits);

/// The paper's "Fast" workload: the built-in QFT cache-blocked for the
/// given decomposition, with the reflection placed two qubits below the top
/// of the local range to dodge the NUMA-penalised strides (§3.2: "the swaps
/// are done after the 30th Hadamard gate").
[[nodiscard]] Circuit fast_qft(int num_qubits, int local_qubits);

// ---------------------------------------------------------------------------

struct Fig2Row {
  int qubits;
  NodeKind kind;
  CpuFreq freq;
  int nodes;
  RunReport report;
};

struct Fig2Result {
  std::vector<Fig2Row> rows;
  Table table;
};

/// Fig 2: built-in QFT runtimes at 33..44 qubits on minimum node counts,
/// standard and high-mem nodes, medium and high frequency. Configurations
/// that do not fit the machine are skipped (as in the paper).
[[nodiscard]] Fig2Result experiment_fig2(const MachineModel& m);

/// Fig 3: runtime and energy of each Fig 2 setup relative to the default
/// (standard nodes, 2.00 GHz), plus CU ratios.
[[nodiscard]] Table experiment_fig3(const MachineModel& m);

struct Table1Result {
  struct Row {
    int qubit;
    RunReport blocking;
    RunReport nonblocking;
  };
  std::vector<Row> rows;  // one per benchmarked qubit
  Table table;
};

/// Table 1: per-gate time/energy of 50 Hadamards on one qubit, 38-qubit
/// register on 64 standard nodes, blocking vs non-blocking. `qubits` selects
/// the rows (the paper prints 29..32; the full sweep is 0..37).
[[nodiscard]] Table1Result experiment_table1(const MachineModel& m,
                                             const std::vector<int>& qubits);

struct Fig4Result {
  struct Row {
    int local_target;
    int distributed_target;
    RunReport blocking;
    RunReport nonblocking;
  };
  std::vector<Row> rows;
  Table table;
};

/// Fig 4: per-gate energy of 50 SWAPs for every (local, distributed) target
/// combination the paper uses.
[[nodiscard]] Fig4Result experiment_fig4(const MachineModel& m);

struct Fig5Result {
  struct Row {
    std::string name;
    PhaseBreakdown phases;
  };
  std::vector<Row> rows;
  Table table;
};

/// Fig 5: runtime profiles (MPI / memory / compute) of the last-qubit
/// Hadamard benchmark, the built-in QFT and the cache-blocked QFT at
/// 38 qubits on 64 nodes.
[[nodiscard]] Fig5Result experiment_fig5(const MachineModel& m);

struct Table2Result {
  struct Row {
    int qubits;
    int nodes;
    bool fast;
    RunReport report;
  };
  std::vector<Row> rows;
  Table table;
};

/// Table 2: built-in vs Fast QFT at 43 qubits / 2048 nodes and 44 qubits /
/// 4096 nodes, with paper values side by side.
[[nodiscard]] Table2Result experiment_table2(const MachineModel& m);

/// Ablation: Fast QFT with and without the half-exchange distributed SWAP
/// (the paper's future-work "communication could potentially be halved").
[[nodiscard]] Table experiment_half_exchange(const MachineModel& m);

/// Ablation: effect of the MPI message cap (chunk size) on exchange cost.
[[nodiscard]] Table experiment_chunking(const MachineModel& m);

struct OverlapResult {
  struct Row {
    int qubits;
    int nodes;
    CommPolicy policy;
    RunReport report;
  };
  std::vector<Row> rows;
  Table table;
};

/// Ablation: the optimization arc blocking -> non-blocking -> overlapped on
/// the Fast QFT headline configurations (43q/2048 and 44q/4096 nodes). The
/// overlapped rows carry the cost model's measured hidden time
/// (overlap_saved_s): (C-1)/C of min(t_comm, t_combine) per exchange.
[[nodiscard]] OverlapResult experiment_overlap(const MachineModel& m);

}  // namespace qsv
