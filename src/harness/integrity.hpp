// Guard-cadence ablation: the energy "price of trust" against the expected
// cost of silent data corruption, swept next to the Daly checkpoint
// optimum at the paper's headline configurations.
//
// The trade-off mirrors Young/Daly: checking the norm invariant every
// tau_g seconds costs (T/tau_g) * g of overhead, while an SDC striking at
// rate lambda is detected tau_g/2 late on average and rolls the run back.
// Balancing overhead against expected detection latency gives the
// guard-cadence analogue of Young's formula, tau_g* = sqrt(2 g / lambda).
#pragma once

#include <vector>

#include "common/table.hpp"
#include "machine/machine.hpp"

namespace qsv {

/// Wall-clock cost of one invariant check (norm streaming + accumulation +
/// optional slice CRC + scalar allreduce) for a `qubits`-qubit state split
/// over `nodes` ranks — the same primitives the cost model charges per
/// kGuard event.
[[nodiscard]] double guard_check_s(const MachineModel& m, int qubits,
                                   int nodes, bool slice_crc);

/// The cadence minimising overhead + expected detection-latency loss:
/// tau_g* = sqrt(2 * check_s / sdc_rate_per_s).
[[nodiscard]] double optimal_guard_cadence_s(double check_s,
                                             double sdc_rate_per_s);

struct IntegritySweepResult {
  struct Row {
    int qubits = 0;
    int nodes = 0;
    /// Silent-corruption rate swept (events per node-hour).
    double sdc_per_node_hour = 0;
    /// Seconds between guard checks; 0 = end-of-run check only.
    double cadence_s = 0;
    /// True on the analytic-optimum cadence row.
    bool optimum = false;
    double checks = 0;            // guard checks over the campaign
    double overhead_s = 0;        // guard wall time
    double expected_sdc = 0;      // expected corruption events
    double detect_latency_s = 0;  // mean corruption-to-detection delay
    double lost_work_s = 0;       // expected rollback replay time
    double wall_s = 0;
    double energy_j = 0;
  };
  std::vector<Row> rows;
  Table table;

  struct Config {
    int qubits = 0;
    int nodes = 0;
    double guard_check_s = 0;   // cost of one check at this scale
    double daly_interval_s = 0; // checkpoint interval the sweep sits beside
  };
  std::vector<Config> configs;
};

/// Sweeps guard cadence at {1/8, 1/2, 1, 2, 8} x the analytic optimum
/// (plus an end-of-run-only baseline) across SDC rates for 24 h QFT
/// campaigns at the paper's headline configurations, with checkpointing
/// fixed at the Daly optimum. Requires a finite node MTBF.
[[nodiscard]] IntegritySweepResult experiment_integrity_sweep(
    const MachineModel& m);

}  // namespace qsv
