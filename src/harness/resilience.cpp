#include "harness/resilience.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"
#include "dist/resilience.hpp"
#include "harness/experiments.hpp"
#include "machine/job.hpp"
#include "perf/runner.hpp"

namespace qsv {

CheckpointSweepResult experiment_checkpoint_sweep(const MachineModel& m) {
  QSV_REQUIRE(m.reliability.node_mtbf_s > 0,
              "checkpoint sweep needs a finite node MTBF "
              "(reliability.node_mtbf_s)");

  CheckpointSweepResult res;
  res.table = Table("Checkpoint interval vs expected energy (built-in QFT; "
                    "* = Daly optimum)");
  res.table.header({"qubits", "nodes", "interval", "E[fail]", "E[wall]",
                    "ckpt I/O", "lost work", "restart", "E[energy]",
                    "vs opt"});

  for (const auto& [qubits, nodes] :
       std::vector<std::pair<int, int>>{{43, 2048}, {44, 4096}}) {
    JobConfig job;
    job.num_qubits = qubits;
    job.node_kind = NodeKind::kStandard;
    job.freq = CpuFreq::kMedium2000;
    job.nodes = nodes;

    DistOptions opts;
    opts.policy = CommPolicy::kBlocking;

    // One QFT at this scale solves in minutes — far inside the system MTBF,
    // where checkpointing can only lose. The regime the paper's headline
    // jobs occupy is the multi-hour campaign (repeated applications over a
    // SLURM allocation), so sweep a ~24 h workload of repeated QFTs.
    const Circuit single = builtin_qft(qubits);
    const RunReport once = run_model(single, m, job, opts);
    const int reps = std::max(
        1, static_cast<int>(std::ceil(24 * 3600 / once.runtime_s)));
    Circuit campaign(qubits, "qft_campaign");
    for (int i = 0; i < reps; ++i) {
      campaign.append(single);
    }
    const RunReport base = run_model(campaign, m, job, opts);

    const double mtbf = m.system_mtbf_s(nodes);
    const double delta = checkpoint_write_s(m, qubits);
    const double tau_opt = daly_interval_s(mtbf, delta);
    res.configs.push_back(CheckpointSweepResult::Config{
        qubits, nodes, mtbf, delta, tau_opt});

    const ExpectedRun at_opt = expected_run(m, job, base, tau_opt);

    auto add = [&](double interval_s, bool optimum) {
      CheckpointSweepResult::Row row;
      row.qubits = qubits;
      row.nodes = nodes;
      row.interval_s = interval_s;
      row.optimum = optimum;
      row.run = optimum ? at_opt : expected_run(m, job, base, interval_s);
      const std::string label =
          interval_s > 0
              ? fmt::seconds(interval_s) + (optimum ? " *" : "")
              : "none";
      res.table.row(
          {std::to_string(qubits), std::to_string(nodes), label,
           fmt::fixed(row.run.expected_failures, 2),
           fmt::seconds(row.run.wall_s),
           fmt::seconds(row.run.checkpoint_io_s),
           fmt::seconds(row.run.lost_work_s), fmt::seconds(row.run.restart_s),
           fmt::energy_j(row.run.expected_energy_j()),
           fmt::fixed(row.run.expected_energy_j() / at_opt.expected_energy_j(),
                      3)});
      res.rows.push_back(std::move(row));
    };

    add(0.0, false);  // no checkpointing: a failure loses the whole run
    for (const double mult : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      add(tau_opt * mult, mult == 1.0);
    }
  }
  return res;
}

RecoveryTierSweepResult experiment_recovery_tiers(const MachineModel& m) {
  QSV_REQUIRE(m.reliability.node_mtbf_s > 0,
              "recovery-tier sweep needs a finite node MTBF "
              "(reliability.node_mtbf_s)");

  RecoveryTierSweepResult res;
  res.table = Table("Per-failure recovery cost by tier (built-in QFT; "
                    "replay = half the Daly interval)");
  res.table.header({"qubits", "nodes", "tier", "time", "energy",
                    "vs restart"});

  for (const auto& [qubits, nodes] :
       std::vector<std::pair<int, int>>{{43, 2048}, {44, 4096}}) {
    JobConfig job;
    job.num_qubits = qubits;
    job.node_kind = NodeKind::kStandard;
    job.freq = CpuFreq::kMedium2000;
    job.nodes = nodes;

    DistOptions opts;
    opts.policy = CommPolicy::kBlocking;
    const RunReport base = run_model(builtin_qft(qubits), m, job, opts);

    // A failure lands uniformly inside a checkpoint segment, so the
    // expected replay window is half the Daly-optimal interval.
    const double mtbf = m.system_mtbf_s(nodes);
    const double tau_opt =
        daly_interval_s(mtbf, checkpoint_write_s(m, qubits));
    const double replay_s = tau_opt / 2;

    RecoveryTierSweepResult::Row row;
    row.qubits = qubits;
    row.nodes = nodes;
    row.substitute = expected_substitute(m, job, base, replay_s);
    row.shrink = expected_shrink(m, job, base, replay_s);
    row.grow_back = expected_grow_back(m, job, base, replay_s);
    row.restart = expected_restart(m, job, base, replay_s);
    row.spare_pool_j = spare_pool_energy_j(m, job, 1, base.runtime_s);
    row.expected_failures =
        std::isfinite(mtbf) && mtbf > 0 ? base.runtime_s / mtbf : 0.0;

    for (const RecoveryEnergy* e :
         {&row.substitute, &row.shrink, &row.grow_back, &row.restart}) {
      res.table.row({std::to_string(qubits), std::to_string(nodes),
                     recovery_tier_name(e->tier), fmt::seconds(e->time_s),
                     fmt::energy_j(e->energy_j),
                     fmt::fixed(e->energy_j / row.restart.energy_j, 3)});
    }
    res.table.row({std::to_string(qubits), std::to_string(nodes),
                   "spare pool (1, solve)", fmt::seconds(base.runtime_s),
                   fmt::energy_j(row.spare_pool_j), "-"});
    res.rows.push_back(std::move(row));
  }
  return res;
}

}  // namespace qsv
