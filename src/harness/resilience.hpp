// Checkpoint-interval sweep: expected runtime/energy of the paper's largest
// configurations (43 qubits / 2048 nodes, 44 qubits / 4096 nodes) as the
// checkpoint interval varies around the analytic Young/Daly optimum.
#pragma once

#include <vector>

#include "common/table.hpp"
#include "machine/machine.hpp"
#include "perf/resilience_model.hpp"

namespace qsv {

struct CheckpointSweepResult {
  struct Row {
    int qubits = 0;
    int nodes = 0;
    /// Checkpoint interval swept (compute seconds between dumps; 0 = none).
    double interval_s = 0;
    /// True on the analytic Daly-optimum row.
    bool optimum = false;
    ExpectedRun run;
  };
  std::vector<Row> rows;
  Table table;

  /// System MTBF and per-checkpoint write cost behind each configuration,
  /// for reporting alongside the table.
  struct Config {
    int qubits = 0;
    int nodes = 0;
    double mtbf_s = 0;
    double checkpoint_s = 0;
    double daly_interval_s = 0;
  };
  std::vector<Config> configs;
};

/// Sweeps the checkpoint interval at {1/8, 1/4, 1/2, 1, 2, 4, 8} x the Daly
/// optimum (plus a no-checkpointing baseline) for the built-in QFT at the
/// paper's two headline configurations, pricing each with expected_run().
/// Requires a machine with finite MTBF (reliability.node_mtbf_s > 0).
[[nodiscard]] CheckpointSweepResult experiment_checkpoint_sweep(
    const MachineModel& m);

/// Per-failure cost of the four elastic recovery tiers at the same headline
/// configurations, with the replay window set to half the Daly interval
/// (the expected loss when failures land uniformly between checkpoints).
struct RecoveryTierSweepResult {
  struct Row {
    int qubits = 0;
    int nodes = 0;
    RecoveryEnergy substitute;
    RecoveryEnergy shrink;
    RecoveryEnergy grow_back;
    RecoveryEnergy restart;
    /// Standing idle cost of holding one spare for the fault-free solve —
    /// what buys the substitute tier's speed.
    double spare_pool_j = 0;
    /// Expected failures over the solve (spare-pool break-even context).
    double expected_failures = 0;
  };
  std::vector<Row> rows;
  Table table;
};

/// Prices substitute / shrink / grow-back / restart per failure with the
/// closed forms in perf/resilience_model. At ARCHER2 defaults the order is
/// strictly substitute < shrink < grow-back < restart at both
/// configurations — the static cheapest-first order choose_tier falls back
/// to is the energy order.
[[nodiscard]] RecoveryTierSweepResult experiment_recovery_tiers(
    const MachineModel& m);

}  // namespace qsv
