#include "harness/validation.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "common/format.hpp"
#include "harness/experiments.hpp"
#include "harness/paper_reference.hpp"
#include "machine/job.hpp"

namespace qsv {
namespace {

void add(std::vector<Check>& out, std::string id, std::string description,
         double value, double lo, double hi) {
  out.push_back(Check{std::move(id), std::move(description), value, lo, hi});
}

/// Relative band around a paper value.
void add_rel(std::vector<Check>& out, const std::string& id,
             const std::string& description, double value, double paper,
             double rel_tol) {
  add(out, id, description, value, paper * (1 - rel_tol),
      paper * (1 + rel_tol));
}

void check_node_counts(const MachineModel& m, std::vector<Check>& out) {
  add(out, "nodes.q33.standard", "33 qubits fit one standard node",
      min_nodes(m, 33, NodeKind::kStandard), 1, 1);
  add(out, "nodes.q34.standard", "34 qubits need 4 standard nodes",
      min_nodes(m, 34, NodeKind::kStandard), 4, 4);
  add(out, "nodes.q41.highmem", "41 qubits max out 256 high-mem nodes",
      min_nodes(m, 41, NodeKind::kHighMem), 256, 256);
  add(out, "nodes.q44.standard", "44 qubits need 4096 standard nodes",
      min_nodes(m, 44, NodeKind::kStandard), 4096, 4096);
  add(out, "nodes.max.standard", "44 qubits is the standard-node maximum",
      max_qubits(m, NodeKind::kStandard), 44, 44);
  add(out, "nodes.max.highmem", "41 qubits is the high-mem maximum",
      max_qubits(m, NodeKind::kHighMem), 41, 41);
}

void check_table1(const MachineModel& m, std::vector<Check>& out) {
  const auto res = experiment_table1(m, {10, 29, 30, 31, 32});
  const auto& base = res.rows[0];
  add_rel(out, "table1.local.time_s", "local H: ~0.5 s per gate",
          base.blocking.time_per_gate(), paper::kTable1BaseTime, 0.04);
  add_rel(out, "table1.local.energy_j", "local H: ~15 kJ per gate",
          base.blocking.energy_per_gate(), paper::kTable1BaseEnergy, 0.05);
  const double want_t[] = {0, 0.53, 0.59, 0.80, 9.63};
  const double want_e[] = {0, 15.3e3, 15.7e3, 20.8e3, 191e3};
  for (std::size_t i = 1; i < res.rows.size(); ++i) {
    const int q = res.rows[i].qubit;
    add_rel(out, "table1.q" + std::to_string(q) + ".blocking.time_s",
            "blocking time per gate at qubit " + std::to_string(q),
            res.rows[i].blocking.time_per_gate(), want_t[i], 0.05);
    add_rel(out, "table1.q" + std::to_string(q) + ".blocking.energy_j",
            "blocking energy per gate at qubit " + std::to_string(q),
            res.rows[i].blocking.energy_per_gate(), want_e[i], 0.10);
  }
  add_rel(out, "table1.q32.nonblocking.time_s",
          "non-blocking distributed gate: 8.82 s",
          res.rows[4].nonblocking.time_per_gate(), 8.82, 0.05);
  add_rel(out, "table1.q32.nonblocking.energy_j",
          "non-blocking distributed gate: 179 kJ",
          res.rows[4].nonblocking.energy_per_gate(), 179e3, 0.05);
  add(out, "table1.jump",
      "~20x runtime jump when the gate becomes distributed",
      res.rows[4].blocking.time_per_gate() /
          res.rows[0].blocking.time_per_gate(),
      15, 25);
}

void check_fig4(const MachineModel& m, std::vector<Check>& out) {
  const auto res = experiment_fig4(m);
  double blk_t_lo = 1e9;
  double blk_t_hi = 0;
  double nbl_e_lo = 1e18;
  double nbl_e_hi = 0;
  for (const auto& row : res.rows) {
    blk_t_lo = std::min(blk_t_lo, row.blocking.time_per_gate());
    blk_t_hi = std::max(blk_t_hi, row.blocking.time_per_gate());
    nbl_e_lo = std::min(nbl_e_lo, row.nonblocking.energy_per_gate());
    nbl_e_hi = std::max(nbl_e_hi, row.nonblocking.energy_per_gate());
  }
  add(out, "fig4.blocking.time_band",
      "SWAP benchmark blocking time in 9.0-9.75 s", blk_t_lo,
      paper::kFig4BlockingTimeLo, paper::kFig4BlockingTimeHi);
  add(out, "fig4.blocking.time_band_hi",
      "SWAP benchmark blocking time in 9.0-9.75 s (max)", blk_t_hi,
      paper::kFig4BlockingTimeLo, paper::kFig4BlockingTimeHi);
  add(out, "fig4.nonblocking.energy_band",
      "SWAP benchmark non-blocking energy in 160-180 kJ", nbl_e_lo,
      paper::kFig4NonblockingEnergyLo, paper::kFig4NonblockingEnergyHi);
  add(out, "fig4.nonblocking.energy_band_hi",
      "SWAP benchmark non-blocking energy in 160-180 kJ (max)", nbl_e_hi,
      paper::kFig4NonblockingEnergyLo, paper::kFig4NonblockingEnergyHi);
}

void check_fig5(const MachineModel& m, std::vector<Check>& out) {
  const auto res = experiment_fig5(m);
  add(out, "fig5.hadamard.mpi", "Hadamard benchmark is MPI-dominated",
      res.rows[0].phases.mpi_fraction(), paper::kFig5HadamardMpiFractionMin,
      1.0);
  add(out, "fig5.builtin.mpi",
      "built-in QFT MPI fraction near the paper's <=43%",
      res.rows[1].phases.mpi_fraction(), 0.35, 0.60);
  add(out, "fig5.blocked.mpi",
      "cache-blocked QFT MPI fraction near the paper's ~25%",
      res.rows[2].phases.mpi_fraction(), 0.15, 0.40);
  add(out, "fig5.mem_to_compute",
      "local time splits ~2:1 memory:computation",
      res.rows[1].phases.memory_s / res.rows[1].phases.compute_s, 1.4, 2.6);
}

void check_table2(const MachineModel& m, std::vector<Check>& out) {
  const auto res = experiment_table2(m);
  for (const auto& row : res.rows) {
    for (const auto& p : paper::kTable2) {
      if (p.qubits != row.qubits || p.fast != row.fast) {
        continue;
      }
      const std::string tag = std::to_string(p.qubits) +
                              (p.fast ? ".fast" : ".builtin");
      add_rel(out, "table2." + tag + ".runtime_s",
              "large-run runtime vs paper", row.report.runtime_s,
              p.runtime_s, 0.10);
      add_rel(out, "table2." + tag + ".energy_j",
              "large-run energy vs paper", row.report.total_energy_j(),
              p.energy_j, 0.10);
    }
  }
  add(out, "table2.headline.speedup44",
      "44-qubit Fast speedup ~40%",
      1 - res.rows[3].report.runtime_s / res.rows[2].report.runtime_s, 0.33,
      0.45);
  add(out, "table2.headline.saving44",
      "44-qubit Fast energy saving ~35%",
      1 - res.rows[3].report.total_energy_j() /
              res.rows[2].report.total_energy_j(),
      0.28, 0.40);
}

void check_fig3(const MachineModel& m, std::vector<Check>& out) {
  const auto fig2 = experiment_fig2(m);
  std::map<int, const Fig2Row*> def;
  std::map<int, const Fig2Row*> high;
  std::map<int, const Fig2Row*> hm;
  for (const auto& r : fig2.rows) {
    if (r.kind == NodeKind::kStandard && r.freq == CpuFreq::kMedium2000) {
      def[r.qubits] = &r;
    } else if (r.kind == NodeKind::kStandard &&
               r.freq == CpuFreq::kHigh2250) {
      high[r.qubits] = &r;
    } else if (r.kind == NodeKind::kHighMem &&
               r.freq == CpuFreq::kMedium2000) {
      hm[r.qubits] = &r;
    }
  }
  // Representative sizes: a small, a mid and the largest register.
  for (int q : {36, 40, 44}) {
    add(out, "fig3.q" + std::to_string(q) + ".high.speedup",
        "2.25 GHz faster, within the paper's <=10%",
        1 - high[q]->report.runtime_s / def[q]->report.runtime_s, 0.005,
        paper::kHighFreqSpeedupHi);
    add(out, "fig3.q" + std::to_string(q) + ".high.energy_penalty",
        "2.25 GHz costs ~25% more energy",
        high[q]->report.total_energy_j() / def[q]->report.total_energy_j() -
            1,
        0.15, 0.32);
  }
  for (int q : {36, 40}) {
    add(out, "fig3.q" + std::to_string(q) + ".highmem.slowdown",
        "high-mem slower but below 2x",
        hm[q]->report.runtime_s / def[q]->report.runtime_s, 1.3,
        paper::kHighMemSlowdownMax);
    add(out, "fig3.q" + std::to_string(q) + ".highmem.cu",
        "high-mem cheaper in CU", hm[q]->report.cu / def[q]->report.cu, 0.5,
        0.999);
  }
}

}  // namespace

std::vector<Check> validate_reproduction(const MachineModel& m) {
  std::vector<Check> out;
  check_node_counts(m, out);
  check_table1(m, out);
  check_fig4(m, out);
  check_fig5(m, out);
  check_table2(m, out);
  check_fig3(m, out);
  return out;
}

Table render_checks(const std::vector<Check>& checks) {
  Table t("Reproduction checks");
  t.header({"check", "value", "band", "status"});
  for (const Check& c : checks) {
    // Built up in place: GCC 12's -Wrestrict misfires on the equivalent
    // operator+ chain (GCC bug 105329).
    std::string band = "[";
    band += fmt::sig3(c.lo);
    band += ", ";
    band += fmt::sig3(c.hi);
    band += ']';
    t.row({c.id, fmt::sig3(c.value), band, c.passed() ? "PASS" : "FAIL"});
  }
  return t;
}

std::string render_markdown_report(const MachineModel& m) {
  const std::vector<Check> checks = validate_reproduction(m);
  std::size_t passed = 0;
  for (const Check& c : checks) {
    passed += c.passed();
  }

  std::ostringstream md;
  md << "# Reproduction report\n\n"
     << "Paper: Adamski, Richings, Brown, *Energy Efficiency of Quantum "
        "Statevector Simulation at Scale*, SC-W 2023.\n\n"
     << "Machine model: calibrated " << m.name
     << " (see DESIGN.md for provenance).\n\n"
     << "**" << passed << " / " << checks.size()
     << " quantitative checks pass.**\n\n";

  md << "## Checks\n\n| check | claim | value | band | status |\n"
     << "|---|---|---|---|---|\n";
  for (const Check& c : checks) {
    md << "| `" << c.id << "` | " << c.description << " | "
       << fmt::sig3(c.value) << " | [" << fmt::sig3(c.lo) << ", "
       << fmt::sig3(c.hi) << "] | " << (c.passed() ? "PASS" : "**FAIL**")
       << " |\n";
  }

  md << "\n## Reproduced tables\n\n";
  for (const std::string& section :
       {experiment_table1(m, {29, 30, 31, 32}).table.str(),
        experiment_table2(m).table.str(), experiment_fig5(m).table.str()}) {
    md << "```\n" << section << "```\n\n";
  }

  md << "## Exchange-pipeline ablation (beyond the paper)\n\n"
     << "The paper's optimization arc stops at non-blocking exchanges\n"
     << "(serialized Sendrecv chain -> posted Isend/Irecv). The overlapped\n"
     << "policy completes it: the combine consumes chunk k while chunk k+1\n"
     << "is still on the wire, hiding (C-1)/C of min(t_comm, t_combine) per\n"
     << "distributed gate behind local work, with the final state\n"
     << "bit-identical to the serial path (docs/COMMS.md).\n\n"
     << "```\n"
     << experiment_overlap(m).table.str() << "```\n";
  return md.str();
}

}  // namespace qsv
