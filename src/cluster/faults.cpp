#include "cluster/faults.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace qsv {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeFailure: return "node-failure";
    case FaultKind::kDropMessage: return "drop";
    case FaultKind::kCorruptMessage: return "corrupt";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kBitFlip: return "bitflip";
    case FaultKind::kRevive: return "revive";
  }
  return "?";
}

FaultPlan sample_node_failures(double node_mtbf_s, double seconds_per_gate,
                               std::uint64_t num_gates, int num_ranks,
                               std::uint64_t seed) {
  QSV_REQUIRE(node_mtbf_s > 0, "node MTBF must be positive");
  QSV_REQUIRE(seconds_per_gate > 0, "per-gate time must be positive");
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  const double horizon_s = seconds_per_gate * static_cast<double>(num_gates);
  for (rank_t r = 0; r < num_ranks; ++r) {
    // Exponential lifetime with mean MTBF; one failure per node at most
    // (a replacement node restarts the clock, but a single job horizon is
    // short against MTBF so we ignore second failures of the same slot).
    const double u = rng.uniform();
    const double t_fail = -node_mtbf_s * std::log1p(-u);
    if (t_fail < horizon_s) {
      FaultSpec s;
      s.kind = FaultKind::kNodeFailure;
      s.rank = r;
      s.at_gate = static_cast<std::uint64_t>(t_fail / seconds_per_gate);
      plan.specs.push_back(s);
    }
  }
  // Fire in gate order so the log reads chronologically.
  std::sort(plan.specs.begin(), plan.specs.end(),
            [](const FaultSpec& a, const FaultSpec& b) {
              return a.at_gate < b.at_gate;
            });
  return plan;
}

namespace {

/// Splits "a@b[:c[:d...]]" into fields; throws with the offending token on
/// error. `extras` holds the colon-separated arguments after the index.
struct Token {
  std::string kind;
  std::uint64_t at = 0;
  std::vector<double> extras;

  [[nodiscard]] bool has_extra() const { return !extras.empty(); }
  [[nodiscard]] double extra() const { return extras.front(); }
};

Token parse_token(const std::string& raw) {
  const auto at = raw.find('@');
  QSV_REQUIRE(at != std::string::npos && at > 0,
              "fault spec '" + raw + "': expected kind@index[:arg]");
  Token t;
  t.kind = raw.substr(0, at);
  const std::string rest = raw.substr(at + 1);
  QSV_REQUIRE(rest.empty() || rest.back() != ':',
              "fault spec '" + raw + "': trailing ':'");
  std::vector<std::string> fields;
  std::istringstream split(rest);
  for (std::string field; std::getline(split, field, ':');) {
    fields.push_back(field);
  }
  QSV_REQUIRE(!fields.empty(),
              "fault spec '" + raw + "': expected kind@index[:arg]");
  {
    std::istringstream is(fields.front());
    is >> t.at;
    QSV_REQUIRE(!is.fail() && is.eof(),
                "fault spec '" + raw + "': bad index '" + fields.front() +
                    "'");
  }
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string& extra = fields[i];
    std::istringstream is(extra);
    double value = 0;
    is >> value;
    QSV_REQUIRE(!is.fail() && is.eof(),
                "fault spec '" + raw + "': bad argument '" + extra + "'");
    t.extras.push_back(value);
  }
  return t;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw, ',')) {
    // Trim surrounding whitespace.
    const auto b = raw.find_first_not_of(" \t");
    if (b == std::string::npos) {
      continue;
    }
    const auto e = raw.find_last_not_of(" \t");
    const Token t = parse_token(raw.substr(b, e - b + 1));

    FaultSpec s;
    if (t.kind == "fail") {
      s.kind = FaultKind::kNodeFailure;
      s.at_gate = t.at;
      s.rank = t.has_extra() ? static_cast<rank_t>(t.extra()) : 0;
    } else if (t.kind == "drop" || t.kind == "corrupt") {
      s.kind = t.kind == "drop" ? FaultKind::kDropMessage
                                : FaultKind::kCorruptMessage;
      QSV_REQUIRE(t.at >= 1, "fault spec '" + raw +
                                 "': message ordinals are 1-based");
      s.at_message = t.at;
      s.rank = t.has_extra() ? static_cast<rank_t>(t.extra()) : -1;
    } else if (t.kind == "delay") {
      s.kind = FaultKind::kStraggler;
      QSV_REQUIRE(t.at >= 1, "fault spec '" + raw +
                                 "': message ordinals are 1-based");
      QSV_REQUIRE(t.has_extra() && t.extra() > 0,
                  "fault spec '" + raw + "': delay needs ':seconds'");
      s.at_message = t.at;
      s.delay_s = t.extra();
    } else if (t.kind == "bitflip") {
      s.kind = FaultKind::kBitFlip;
      s.at_gate = t.at;
      s.rank = t.has_extra() ? static_cast<rank_t>(t.extra()) : 0;
      if (t.extras.size() >= 2) {
        const int bit = static_cast<int>(t.extras[1]);
        QSV_REQUIRE(bit >= 0 && bit < 2 * 64,
                    "fault spec '" + raw +
                        "': amplitude bit must be in [0, 128)");
        s.bit = bit;
      }
    } else if (t.kind == "revive") {
      s.kind = FaultKind::kRevive;
      s.at_gate = t.at;
      s.rank = t.has_extra() ? static_cast<rank_t>(t.extra()) : -1;
    } else {
      QSV_REQUIRE(false, "fault spec '" + raw +
                             "': unknown kind '" + t.kind +
                             "' (want fail|drop|corrupt|delay|bitflip|"
                             "revive)");
    }
    plan.specs.push_back(s);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      fired_(plan_.specs.size(), false),
      rng_(plan_.seed),
      // A fixed xor keeps the bitflip stream decoupled from the message
      // stream while staying a pure function of the plan seed.
      bitflip_rng_(plan_.seed ^ 0x9E3779B97F4A7C15ull) {}

bool FaultInjector::rank_dead(rank_t rank) const {
  std::lock_guard<std::mutex> lk(m_);
  return std::find(dead_.begin(), dead_.end(), rank) != dead_.end();
}

Rng& FaultInjector::rng_for_sender(rank_t from) {
  auto it = sender_rngs_.find(from);
  if (it == sender_rngs_.end()) {
    // Mix the sender into the plan seed (distinct odd multiplier per rank,
    // SplitMix-style): every sender's stream is a pure function of
    // (plan seed, sender) and independent of arrival interleaving.
    const std::uint64_t seed =
        plan_.seed ^
        (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(from) + 2));
    it = sender_rngs_.emplace(from, Rng(seed)).first;
  }
  return it->second;
}

FaultInjector::MessageOutcome FaultInjector::on_message(
    rank_t from, rank_t to, double recv_deadline_s) {
  std::lock_guard<std::mutex> lk(m_);
  const bool per_sender = scope_ == OrdinalScope::kPerSender;
  const std::uint64_t ordinal =
      per_sender ? ++sender_counters_[from] : ++message_counter_;
  Rng& rng = per_sender ? rng_for_sender(from) : rng_;
  MessageOutcome out;

  // Explicit one-shot specs first: deterministic regardless of probability
  // settings. Every spec naming this ordinal fires its latch, and when
  // several land on the same message the most severe verdict wins (drop >
  // corrupt > straggle): a dropped message makes a companion corruption or
  // delay moot, since nothing is delivered.
  double explicit_delay_s = 0;
  int severity = 0;  // 0 deliver, 1 straggle, 2 corrupt, 3 drop
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (fired_[i] || s.at_message != ordinal ||
        s.kind == FaultKind::kNodeFailure || s.kind == FaultKind::kBitFlip ||
        s.kind == FaultKind::kRevive) {
      continue;
    }
    // Per-sender ordinals only exist relative to a sender, so a spec that
    // names none binds to rank 0 (documented in OrdinalScope).
    const rank_t spec_rank = per_sender && s.rank < 0 ? 0 : s.rank;
    if (spec_rank >= 0 && spec_rank != from) {
      continue;
    }
    fired_[i] = true;
    switch (s.kind) {
      case FaultKind::kDropMessage:
        severity = std::max(severity, 3);
        break;
      case FaultKind::kCorruptMessage:
        severity = std::max(severity, 2);
        break;
      case FaultKind::kStraggler:
        if (severity < 1) {
          severity = 1;
          explicit_delay_s = s.delay_s;
        }
        break;
      case FaultKind::kNodeFailure:
      case FaultKind::kBitFlip:
      case FaultKind::kRevive:
        break;  // unreachable: gate-indexed specs never match a message
    }
  }
  if (severity == 3) {
    out.verdict = Verdict::kDrop;
  } else if (severity == 2) {
    out.verdict = Verdict::kCorrupt;
  } else if (severity == 1) {
    out.verdict = Verdict::kDelay;
    out.delay_s = explicit_delay_s;
  }

  // Probabilistic stream: one draw per configured hazard per message, in a
  // fixed order, so the consumed RNG stream is identical between runs.
  if (out.verdict == Verdict::kDeliver) {
    if (plan_.drop_prob > 0 && rng.uniform() < plan_.drop_prob) {
      out.verdict = Verdict::kDrop;
    }
    if (plan_.corrupt_prob > 0 && rng.uniform() < plan_.corrupt_prob &&
        out.verdict == Verdict::kDeliver) {
      out.verdict = Verdict::kCorrupt;
    }
    if (plan_.straggler_prob > 0 && rng.uniform() < plan_.straggler_prob &&
        out.verdict == Verdict::kDeliver) {
      out.verdict = Verdict::kDelay;
      out.delay_s = plan_.straggler_delay_s;
    }
  }

  // A straggler that lands strictly after the receiver's watchdog deadline
  // is never consumed: it surfaces as a recv timeout. The retry layer
  // charges the elapsed deadline, so the injected delay itself must not be
  // billed to the gate (that would double-count the wait).
  if (out.verdict == Verdict::kDelay && out.delay_s > recv_deadline_s) {
    out.past_deadline = true;
  }

  if (out.verdict != Verdict::kDeliver) {
    FaultEvent e;
    e.rank = from;
    e.peer = to;
    e.message = ordinal;
    e.gate = current_gate_;
    switch (out.verdict) {
      case Verdict::kDrop:
        e.kind = FaultKind::kDropMessage;
        ++totals_.dropped;
        break;
      case Verdict::kCorrupt:
        e.kind = FaultKind::kCorruptMessage;
        ++totals_.corrupted;
        break;
      case Verdict::kDelay:
        e.kind = FaultKind::kStraggler;
        e.delay_s = out.delay_s;
        ++totals_.straggled;
        if (!out.past_deadline) {
          totals_.delay_s += out.delay_s;
          gate_charges_.delay_s += out.delay_s;
        }
        break;
      case Verdict::kDeliver:
        break;
    }
    log_.push_back(e);
  }
  return out;
}

std::optional<rank_t> FaultInjector::on_gate(std::uint64_t index) {
  std::lock_guard<std::mutex> lk(m_);
  current_gate_ = index;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (fired_[i] || s.kind != FaultKind::kNodeFailure ||
        s.at_gate != index) {
      continue;
    }
    fired_[i] = true;
    dead_.push_back(s.rank);
    ++totals_.node_failures;
    FaultEvent e;
    e.kind = FaultKind::kNodeFailure;
    e.rank = s.rank;
    e.gate = index;
    log_.push_back(e);
    return s.rank;
  }
  return std::nullopt;
}

std::vector<FaultInjector::BitFlipSpec> FaultInjector::bitflips_at_gate(
    std::uint64_t index) {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<BitFlipSpec> out;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (fired_[i] || s.kind != FaultKind::kBitFlip || s.at_gate != index) {
      continue;
    }
    fired_[i] = true;
    BitFlipSpec flip;
    flip.rank = s.rank;
    flip.amp_draw = bitflip_rng_.next_u64();
    flip.bit = s.bit >= 0 ? s.bit
                          : static_cast<int>(bitflip_rng_.below(2 * 64));
    out.push_back(flip);
    ++totals_.bitflips;
    FaultEvent e;
    e.kind = FaultKind::kBitFlip;
    e.rank = s.rank;
    e.gate = index;
    e.bit = flip.bit;
    log_.push_back(e);
  }
  return out;
}

void FaultInjector::record_retry(std::uint64_t bytes, int messages,
                                 double backoff_s) {
  std::lock_guard<std::mutex> lk(m_);
  ++totals_.retries;
  totals_.retry_bytes += bytes;
  totals_.delay_s += backoff_s;
  gate_charges_.retry_bytes += bytes;
  gate_charges_.retry_messages += messages;
  gate_charges_.delay_s += backoff_s;
}

FaultInjector::GateFaultCharges FaultInjector::take_gate_charges() {
  std::lock_guard<std::mutex> lk(m_);
  const GateFaultCharges out = gate_charges_;
  gate_charges_ = GateFaultCharges{};
  return out;
}

void FaultInjector::restart() {
  std::lock_guard<std::mutex> lk(m_);
  dead_.clear();
}

void FaultInjector::revive(rank_t rank) {
  std::lock_guard<std::mutex> lk(m_);
  dead_.erase(std::remove(dead_.begin(), dead_.end(), rank), dead_.end());
}

std::size_t FaultInjector::take_revivals(std::uint64_t up_to_gate) {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (fired_[i] || s.kind != FaultKind::kRevive || s.at_gate > up_to_gate) {
      continue;
    }
    fired_[i] = true;
    ++fired;
    ++totals_.revivals;
    FaultEvent e;
    e.kind = FaultKind::kRevive;
    e.rank = s.rank;
    e.gate = s.at_gate;
    log_.push_back(e);
  }
  return fired;
}

std::size_t FaultInjector::pending_revivals() const {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t pending = 0;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    if (!fired_[i] && plan_.specs[i].kind == FaultKind::kRevive) {
      ++pending;
    }
  }
  return pending;
}

}  // namespace qsv
