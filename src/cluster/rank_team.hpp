// The rank runtime: one persistent OS thread per rank.
//
// The serial engine iterates ranks on the calling thread; with a RankTeam
// each rank's share of a gate runs concurrently on its own worker, so
// exchanges really overlap and the mailboxes carry concurrent traffic. The
// orchestration (gate planning, fault ticks, event emission, reductions,
// recovery) stays on the calling thread between parallel regions — that is
// what keeps floating-point summation order, and therefore the state,
// bitwise identical to the serial engine.
//
// run() is a fork/join region: workers execute fn(rank) for each rank and
// the caller blocks until all are done (the engine's barrier point). A
// worker's exception is captured and the lowest-rank one is rethrown from
// run(), mirroring the serial engine's ascending-rank iteration order.
//
// pair_arrive() is a two-party combining rendezvous keyed by the lower rank
// of an exchanging pair: both sides deposit their round outcome (failed /
// timed out / fatal) and both observe the OR of the two, so coordinated
// retry decisions are symmetric — no one-sided retry can desynchronise a
// pair. Fault-free exchanges never call it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/topology.hpp"

namespace qsv {

class RankTeam {
 public:
  /// Spawns `num_workers` threads placed per `plan` (workers pin themselves
  /// where the plan names CPUs; failures are recorded, not fatal).
  /// `omp_threads_per_worker` caps each worker's nested OpenMP width so
  /// rank-parallel kernels do not oversubscribe the machine; <= 0 leaves
  /// the OpenMP default untouched.
  RankTeam(int num_workers, PlacementPlan plan,
           int omp_threads_per_worker = 0);
  ~RankTeam();

  RankTeam(const RankTeam&) = delete;
  RankTeam& operator=(const RankTeam&) = delete;

  /// Runs fn(r) for r in [0, count) on the worker threads and joins.
  /// `count` must not exceed workers() — after a shrink the extra workers
  /// simply idle. Rethrows the lowest-rank captured exception, if any.
  void run(int count, const std::function<void(int)>& fn);

  [[nodiscard]] int workers() const {
    return static_cast<int>(threads_.size());
  }
  /// Workers that successfully pinned to their planned CPU.
  [[nodiscard]] int pinned() const { return pinned_; }
  [[nodiscard]] const PlacementPlan& plan() const { return plan_; }

  /// Combined outcome of one exchange round as both pair members saw it.
  struct PairOutcome {
    bool any_fail = false;   // at least one side caught a CommFault
    bool any_timed = false;  // at least one side's fault was a timeout
    bool any_fatal = false;  // at least one side hit NodeFailure
  };

  /// Two-party rendezvous for the exchanging pair whose lower rank is
  /// `pair_id`: blocks until both members have arrived, then both see the
  /// OR-combination of the deposited flags. Reusable round after round
  /// (the same two threads are the only parties, so rounds cannot overlap).
  /// `timeout_s` > 0 bounds the wait — a peer that died of something other
  /// than a communication fault must not hang its partner; expiry throws
  /// qsv::Error. <= 0 waits indefinitely.
  PairOutcome pair_arrive(int pair_id, bool fail, bool timed, bool fatal,
                          double timeout_s = 0);

 private:
  void worker_main(int index);

  PlacementPlan plan_;
  std::vector<std::thread> threads_;
  int pinned_ = 0;
  int omp_threads_per_worker_ = 0;

  // Fork/join state: a generation counter publishes jobs; workers with
  // index < job_count_ execute and report back through done_.
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int job_count_ = 0;
  int done_ = 0;
  int started_ = 0;  // workers past their init (pinning) phase
  bool stop_ = false;
  const std::function<void(int)>* job_ = nullptr;
  std::vector<std::exception_ptr> errors_;

  struct PairSlot {
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t epoch = 0;
    bool fail = false;
    bool timed = false;
    bool fatal = false;
    PairOutcome result;
  };
  std::vector<std::unique_ptr<PairSlot>> pair_slots_;
};

}  // namespace qsv
