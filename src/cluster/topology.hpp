// Host topology discovery and rank placement for the threaded cluster.
//
// The paper's machine has two NUMA domains per ARCHER2 node; "Low-Level and
// NUMA-Aware Optimization for High-Performance Quantum Simulation"
// (PAPERS.md) shows that where a rank's slice lives relative to the thread
// that sweeps it is worth large factors on exactly this workload. When ranks
// become OS threads (cluster/rank_team.hpp) the placement question becomes
// real for us too: this header discovers the host's NUMA domains from
// sysfs (with a portable single-domain fallback), maps ranks to CPUs under
// a placement policy, pins threads, and measures the local-vs-remote
// bandwidth ratio the cost model folds into exchange pricing.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace qsv {

/// One NUMA domain: its sysfs node id and the CPUs it owns.
struct NumaDomain {
  int id = 0;
  std::vector<int> cpus;
};

/// The host as the placement layer sees it.
struct HostTopology {
  std::vector<NumaDomain> domains;
  /// Total CPUs across all domains.
  int total_cpus = 0;
  /// True when the layout came from /sys/devices/system/node; false for the
  /// portable fallback (one domain holding hardware_concurrency CPUs).
  bool from_sysfs = false;
};

/// Reads /sys/devices/system/node/node*/cpulist. On hosts without the sysfs
/// tree (or outside Linux) falls back to a single domain of
/// std::thread::hardware_concurrency() CPUs numbered 0..n-1.
[[nodiscard]] HostTopology discover_host_topology();

/// Parses a kernel cpulist string ("0-3,8,10-11") into CPU ids.
[[nodiscard]] std::vector<int> parse_cpulist(const std::string& text);

/// How rank threads are laid onto the host's domains.
enum class PlacementPolicy {
  kCompact,  // fill one domain before spilling to the next (shared LLC)
  kScatter,  // round-robin across domains (maximum aggregate bandwidth)
  kNone,     // no pinning: the OS scheduler decides
};

[[nodiscard]] const char* placement_policy_name(PlacementPolicy p);

/// Parses "compact" | "scatter" | "none" (the QSV_PLACEMENT values);
/// nullopt for anything else.
[[nodiscard]] std::optional<PlacementPolicy> parse_placement_policy(
    const std::string& text);

/// The concrete rank -> CPU/domain assignment for one run.
struct PlacementPlan {
  PlacementPolicy policy = PlacementPolicy::kNone;
  /// CPU each rank's thread is pinned to (empty for kNone).
  std::vector<int> cpu_of_rank;
  /// NUMA domain each rank's slice should be first-touched in. Filled for
  /// every policy (kNone uses the compact mapping so cross-domain exchange
  /// pricing stays defined even without pinning).
  std::vector<int> domain_of_rank;
};

/// Maps `num_ranks` rank threads onto the host under `policy`.
[[nodiscard]] PlacementPlan plan_placement(const HostTopology& topo,
                                           int num_ranks,
                                           PlacementPolicy policy);

/// Pins the calling thread to `cpu`. Returns false where unsupported (or
/// when the kernel refuses, e.g. the CPU is outside the allowed mask) —
/// callers record the outcome instead of failing the run.
bool pin_current_thread(int cpu);

/// Measures the local-vs-remote memory bandwidth ratio between the first
/// two domains with a small strided-copy probe (buffer of `probe_bytes`).
/// Returns 1.0 on single-domain hosts or when pinning is unavailable; the
/// result is always >= 1.0. This is the factor the cost model applies to
/// cross-domain exchange traffic.
[[nodiscard]] double measure_numa_bandwidth_ratio(
    const HostTopology& topo, std::size_t probe_bytes = 8u << 20);

}  // namespace qsv
