#include "cluster/rank_team.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace qsv {

RankTeam::RankTeam(int num_workers, PlacementPlan plan,
                   int omp_threads_per_worker)
    : plan_(std::move(plan)),
      omp_threads_per_worker_(omp_threads_per_worker) {
  QSV_REQUIRE(num_workers >= 1, "rank team needs at least one worker");
  QSV_REQUIRE(plan_.domain_of_rank.size() >=
                  static_cast<std::size_t>(num_workers),
              "placement plan covers fewer ranks than the team has workers");
  errors_.resize(static_cast<std::size_t>(num_workers));
  pair_slots_.resize(static_cast<std::size_t>(num_workers));
  for (auto& slot : pair_slots_) {
    slot = std::make_unique<PairSlot>();
  }
  threads_.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
  // Wait for every worker to finish its init (pinning, OpenMP width) so
  // pinned() is final once construction returns and first-touch work
  // dispatched immediately after lands on already-placed threads.
  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [&] { return started_ == num_workers; });
}

RankTeam::~RankTeam() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void RankTeam::worker_main(int index) {
  bool did_pin = false;
  if (!plan_.cpu_of_rank.empty() &&
      static_cast<std::size_t>(index) < plan_.cpu_of_rank.size()) {
    did_pin =
        pin_current_thread(plan_.cpu_of_rank[static_cast<std::size_t>(index)]);
  }
#ifdef _OPENMP
  if (omp_threads_per_worker_ > 0) {
    // Per-thread ICV: nested parallel regions opened by this worker's
    // kernels get its share of the machine, not the whole of it.
    omp_set_num_threads(omp_threads_per_worker_);
  }
#endif
  std::uint64_t seen = 0;
  {
    std::lock_guard<std::mutex> lk(m_);
    if (did_pin) {
      ++pinned_;
    }
    ++started_;
  }
  cv_done_.notify_all();

  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      if (index >= job_count_) {
        continue;  // idle this round (shrunk cluster)
      }
      job = job_;
    }
    try {
      (*job)(index);
    } catch (...) {
      // Own slot, written before the done_ handshake publishes it.
      errors_[static_cast<std::size_t>(index)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      ++done_;
      if (done_ == job_count_) {
        cv_done_.notify_all();
      }
    }
  }
}

void RankTeam::run(int count, const std::function<void(int)>& fn) {
  QSV_REQUIRE(count >= 0 && count <= workers(),
              "rank team of " + std::to_string(workers()) +
                  " workers cannot run " + std::to_string(count) + " ranks");
  if (count == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    job_ = &fn;
    job_count_ = count;
    done_ = 0;
    ++generation_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] { return done_ == job_count_; });
    job_ = nullptr;
  }
  // Lowest rank first: the order the serial engine would have surfaced it.
  for (int r = 0; r < count; ++r) {
    if (errors_[static_cast<std::size_t>(r)]) {
      std::rethrow_exception(errors_[static_cast<std::size_t>(r)]);
    }
  }
}

RankTeam::PairOutcome RankTeam::pair_arrive(int pair_id, bool fail,
                                            bool timed, bool fatal,
                                            double timeout_s) {
  QSV_REQUIRE(pair_id >= 0 &&
                  static_cast<std::size_t>(pair_id) < pair_slots_.size(),
              "pair id out of range");
  PairSlot& s = *pair_slots_[static_cast<std::size_t>(pair_id)];
  std::unique_lock<std::mutex> lk(s.m);
  s.fail = s.fail || fail;
  s.timed = s.timed || timed;
  s.fatal = s.fatal || fatal;
  ++s.arrived;
  if (s.arrived == 2) {
    s.result = PairOutcome{s.fail, s.timed, s.fatal};
    s.fail = s.timed = s.fatal = false;
    s.arrived = 0;
    ++s.epoch;
    s.cv.notify_all();
    return s.result;
  }
  const std::uint64_t my_epoch = s.epoch;
  const auto done = [&] { return s.epoch != my_epoch; };
  if (timeout_s > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    if (!s.cv.wait_until(lk, deadline, done)) {
      // Withdraw so a later round does not see a stale arrival.
      s.arrived = 0;
      s.fail = s.timed = s.fatal = false;
      throw Error("pair rendezvous " + std::to_string(pair_id) +
                  " timed out waiting for the peer rank");
    }
  } else {
    s.cv.wait(lk, done);
  }
  // Safe to read: the next round needs this thread to arrive again before
  // it can complete and overwrite result.
  return s.result;
}

}  // namespace qsv
