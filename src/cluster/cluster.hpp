// In-process virtual cluster: the message-passing substrate standing in for
// MPI (see DESIGN.md substitution table).
//
// Semantics reproduced from the paper's description of QuEST on ARCHER2:
//  * one process (rank) per node, power-of-two rank counts;
//  * individual messages capped (2 GB on ARCHER2's MPI), so a full-slice
//    exchange is split into many messages — 32 per distributed gate at
//    64 GB per node;
//  * blocking exchanges are a sequence of Sendrecv calls; the non-blocking
//    rewrite posts all Isend/Irecv up front and waits once.
//
// The transport here is *functional*: messages are byte buffers delivered
// through per-pair FIFO queues. Timing semantics (serialisation vs
// pipelining, congestion) belong to the cost model, which consumes the
// execution events the engine emits; the cluster records ground-truth
// traffic counters that the trace backend must reproduce exactly.
//
// Two execution modes share this transport:
//  * serial (default): the single-threaded engine orchestrates every send
//    and recv in program order; a recv that finds no message throws
//    CommTimeout immediately (the message can never arrive later).
//  * concurrent (enable_concurrent): ranks run on their own threads
//    (cluster/rank_team.hpp) and the per-pair queues become bounded MPSC
//    mailboxes — recv blocks on a condition variable until a message lands
//    or the watchdog deadline expires, and send blocks while the
//    destination mailbox is at capacity (MPI buffered-send backpressure).
//    The same watchdog deadline bounds both waits, so a lost peer always
//    surfaces as the familiar CommTimeout instead of a hang.
//
// Integrity is end-to-end, not oracular: every payload carries a CRC-32
// computed at send time, and recv recomputes and compares before handing
// the bytes over. A mismatch surfaces as CommCorrupt — the same typed error
// a real MPI job raises from a failed application-level checksum — and the
// fault injector is pure bookkeeping: no delivery decision ever reads an
// injected "this one is bad" flag. A receive that finds no message models
// an MPI watchdog timeout firing after the configured deadline.
//
// An optional FaultInjector (cluster/faults.hpp) makes the transport lossy
// on a deterministic schedule: dropped messages surface as CommTimeout on
// the matching recv, corrupted ones get a payload bit flipped in flight
// (caught by the receiver's checksum), and messages touching a dead rank
// throw NodeFailure. Without an injector the transport is perfect and
// behaves exactly as before.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace qsv {

class FaultInjector;

/// Communication flavour of a pairwise exchange (paper §3.2). The three
/// values are the paper's optimization arc: its measured blocking→
/// non-blocking win, then its stated future work — overlapping the combine
/// with the chunk stream still in flight.
enum class CommPolicy {
  kBlocking,     // QuEST default: sequence of blocking Sendrecv
  kNonBlocking,  // the paper's rewrite: Isend/Irecv + WaitAll
  kOverlapped,   // Isend/Irecv + per-chunk Waitany: the combine kernel runs
                 // on chunk k while chunk k+1 is in flight
};

[[nodiscard]] inline const char* comm_policy_name(CommPolicy p) {
  switch (p) {
    case CommPolicy::kBlocking: return "blocking";
    case CommPolicy::kNonBlocking: return "non-blocking";
    case CommPolicy::kOverlapped: return "overlapped";
  }
  return "?";
}

/// Ground-truth traffic counters. Messages consumed by an injected drop are
/// still counted (the wire carried them); retried chunks count again, which
/// is exactly the extra traffic the cost model charges.
struct CommStats {
  std::uint64_t messages = 0;        // individual messages sent
  std::uint64_t bytes = 0;           // payload bytes sent
  std::uint64_t max_message_bytes = 0;  // largest single message observed
  /// Peak queued messages. Deterministic in serial mode; in concurrent mode
  /// it depends on thread scheduling (a fast sender deepens the mailbox a
  /// slow receiver is draining), so determinism checks must not key off it.
  std::uint64_t max_in_flight = 0;
  /// Completed barriers (every participant arrived).
  std::uint64_t barriers = 0;
  /// Per-rank barrier participations: each completed barrier contributes
  /// one arrival per rank, whether the ranks arrived concurrently
  /// (barrier(rank)) or the orchestrator arrived for all of them
  /// (barrier()). barriers counted whole-cluster events only, which
  /// under-reported participation once ranks became real threads.
  std::uint64_t barrier_arrivals = 0;

  // Receiver-side delivery counters (the trace backend reproduces the
  // send-side traffic above; delivery is a functional-transport notion).
  std::uint64_t delivered = 0;           // receives that passed their CRC
  std::uint64_t checksum_failures = 0;   // receives whose CRC mismatched

  bool operator==(const CommStats&) const = default;
};

/// The virtual cluster. All methods validate rank ids and message sizes.
class VirtualCluster {
 public:
  /// `num_ranks` must be a power of two (QuEST requires 2^k processes).
  /// `max_message_bytes` models the MPI message-size cap; `recv_deadline_s`
  /// is the watchdog deadline a receive waits before declaring a timeout
  /// (reported in the CommTimeout and charged by the retry layer as wait).
  VirtualCluster(int num_ranks, std::size_t max_message_bytes,
                 double recv_deadline_s = 0.5);

  [[nodiscard]] double recv_deadline_s() const { return recv_deadline_s_; }

  [[nodiscard]] int num_ranks() const { return num_ranks_; }
  [[nodiscard]] std::size_t max_message_bytes() const {
    return max_message_bytes_;
  }

  /// Attaches a fault injector (may be null to restore perfect transport).
  /// The injector must outlive the cluster.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Posts one message from `from` to `to`. The payload is copied into the
  /// queue (MPI buffered-send semantics) together with its sender-side
  /// CRC-32. Throws if the payload exceeds the message cap — callers must
  /// chunk. With an injector attached, the message may be dropped or have a
  /// payload bit flipped per the fault plan, and messages touching a dead
  /// rank throw NodeFailure.
  void send(rank_t from, rank_t to, std::span<const std::byte> payload);

  /// MPI-style wildcard tag: recv(tag = kAnyTag) matches the oldest message
  /// regardless of its tag, and send(tag = kAnyTag) posts an untagged
  /// message. All pre-overlap traffic is untagged, so its behaviour is
  /// unchanged.
  static constexpr int kAnyTag = -1;

  /// Tagged send: like send(), but the message carries `tag` (>= 0) for the
  /// receiver to match on. The overlapped exchange pipeline tags each chunk
  /// with its chunk index so completion is chunk-granular — a retry can
  /// purge and re-request one chunk without touching healthy in-flight ones.
  void send(rank_t from, rank_t to, std::span<const std::byte> payload,
            int tag);

  /// Pops the oldest message from `from` to `to` into `out`, which must be
  /// exactly the message's size. Throws CommTimeout if no message is queued
  /// when the watchdog deadline expires (a dropped message, or — fault-free
  /// — an engine scheduling bug) and CommCorrupt when the recomputed CRC-32
  /// of the received bytes disagrees with the sender's. Detection is purely
  /// checksum-based: no injector state is consulted.
  void recv(rank_t from, rank_t to, std::span<std::byte> out);

  /// Tagged receive (MPI tag matching): pops the oldest queued message from
  /// `from` to `to` whose tag equals `tag`, skipping non-matching ones —
  /// chunk k+1 landing first never satisfies the wait for chunk k. Same
  /// timeout/CRC semantics as the untagged form.
  void recv(rank_t from, rank_t to, std::span<std::byte> out, int tag);

  /// Number of queued messages from `from` to `to`.
  [[nodiscard]] std::size_t pending(rank_t from, rank_t to) const;

  /// Discards queued messages with tag `tag` between `a` and `b` (both
  /// directions): the overlapped pipeline's chunk-granular retry clears just
  /// the failed chunk before re-requesting it, leaving every other chunk of
  /// the exchange in flight — purge_pair here would destroy healthy chunks
  /// and force a full re-send.
  void purge_tag(rank_t a, rank_t b, int tag);

  /// Discards queued messages between `a` and `b` (both directions): the
  /// retry path clears half-delivered exchanges before re-sending. Clearing
  /// *both* directions matters for non-blocking exchanges: an isend posted
  /// by the failing side before it died must not survive for a substituted
  /// node to consume as a stale pre-failure payload.
  void purge_pair(rank_t a, rank_t b);

  /// Discards every queued message touching `rank` (either direction, any
  /// peer): the mailbox re-bind when a spare node takes over a rank id. The
  /// replacement starts with empty mailboxes.
  void purge_rank(rank_t rank);

  /// Shrink-to-survive membership change: the cluster drops to
  /// `new_num_ranks` (a smaller power of two). Requires quiescence — the
  /// re-shard traffic must have fully drained first. Traffic counters are
  /// preserved: the movement already paid for stays on the books.
  void shrink_to(int new_num_ranks);

  /// Elastic grow-back membership change: the cluster widens to
  /// `new_num_ranks` (a larger power of two) when replacement nodes arrive
  /// mid-run. Requires quiescence, like shrink_to; traffic counters are
  /// preserved. The revived ranks start with empty mailboxes.
  void grow_to(int new_num_ranks);

  /// Discards every queued message (restart-from-checkpoint recovery).
  void reset_queues();

  /// True when every queue is empty — asserted by the engine after each
  /// gate so no exchange leaks into the next operation.
  [[nodiscard]] bool quiescent() const;

  /// Switches the per-pair queues into bounded concurrent mailboxes:
  /// recv blocks (condition variable) until a message lands or the watchdog
  /// deadline expires; send blocks while the destination mailbox holds
  /// `capacity_messages` undelivered messages. Call before any traffic.
  void enable_concurrent(std::size_t capacity_messages);
  [[nodiscard]] bool concurrent() const { return concurrent_; }

  /// Whole-cluster barrier executed by a single orchestrating thread on
  /// behalf of every rank: counts one completed barrier and one arrival per
  /// rank (the serial engine's synchronisation points are implicit in its
  /// program order, so this never blocks).
  void barrier();

  /// Rank `r` arrives at the current barrier and blocks until all
  /// num_ranks() ranks have arrived (concurrent mode's real
  /// synchronisation point; also correct, if pointless, serially with one
  /// rank). Throws CommTimeout if the rest of the cluster fails to arrive
  /// within the watchdog deadline — a dead peer must not hang the caller.
  void barrier(rank_t r);

  [[nodiscard]] const CommStats& stats() const {
    // Caller-visible reads happen between parallel regions (quiescent), so
    // no lock is taken; concurrent readers would need one.
    return stats_;
  }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  struct Message {
    std::vector<std::byte> data;
    /// CRC-32 of the payload as the sender handed it over — computed before
    /// any in-flight corruption, so the receiver's recompute catches it.
    std::uint32_t crc = 0;
    /// Sender-assigned tag (kAnyTag for untagged traffic); the overlapped
    /// pipeline's chunk index.
    int tag = kAnyTag;
  };

  void check_rank(rank_t r) const;
  void check_alive(rank_t from, rank_t to) const;

  int num_ranks_;
  std::size_t max_message_bytes_;
  double recv_deadline_s_;
  // Keyed by (from, to). A map keeps memory proportional to active pairs
  // rather than num_ranks^2.
  std::map<std::pair<rank_t, rank_t>, std::deque<Message>> queues_;
  std::uint64_t in_flight_ = 0;
  CommStats stats_;
  FaultInjector* injector_ = nullptr;

  // Concurrent-mode state. The single mutex guards queues_, in_flight_,
  // stats_ and the barrier epoch; payload copies and CRC work happen
  // outside it so senders and receivers overlap on the expensive part.
  bool concurrent_ = false;
  std::size_t capacity_messages_ = std::numeric_limits<std::size_t>::max();
  mutable std::mutex m_;
  std::condition_variable cv_recv_;   // a message landed
  std::condition_variable cv_send_;   // mailbox space freed
  std::condition_variable cv_barrier_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_epoch_ = 0;
};

/// Splits a payload of `total_bytes` into messages of at most
/// `max_message_bytes`; returns the number of messages (the paper's "32
/// messages are exchanged per distributed gate").
[[nodiscard]] int message_count(std::uint64_t total_bytes,
                                std::size_t max_message_bytes);

}  // namespace qsv
