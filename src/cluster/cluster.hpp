// In-process virtual cluster: the message-passing substrate standing in for
// MPI (see DESIGN.md substitution table).
//
// Semantics reproduced from the paper's description of QuEST on ARCHER2:
//  * one process (rank) per node, power-of-two rank counts;
//  * individual messages capped (2 GB on ARCHER2's MPI), so a full-slice
//    exchange is split into many messages — 32 per distributed gate at
//    64 GB per node;
//  * blocking exchanges are a sequence of Sendrecv calls; the non-blocking
//    rewrite posts all Isend/Irecv up front and waits once.
//
// The transport here is *functional*: messages are byte buffers delivered
// through per-pair FIFO queues, orchestrated deterministically by the
// single-threaded engine. Timing semantics (serialisation vs pipelining,
// congestion) belong to the cost model, which consumes the execution events
// the engine emits; the cluster records ground-truth traffic counters that
// the trace backend must reproduce exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace qsv {

/// Communication flavour of a pairwise exchange (paper §3.2).
enum class CommPolicy {
  kBlocking,     // QuEST default: sequence of blocking Sendrecv
  kNonBlocking,  // the paper's rewrite: Isend/Irecv + WaitAll
};

[[nodiscard]] inline const char* comm_policy_name(CommPolicy p) {
  return p == CommPolicy::kBlocking ? "blocking" : "non-blocking";
}

/// Ground-truth traffic counters.
struct CommStats {
  std::uint64_t messages = 0;        // individual messages sent
  std::uint64_t bytes = 0;           // payload bytes sent
  std::uint64_t max_message_bytes = 0;  // largest single message observed
  std::uint64_t max_in_flight = 0;   // peak queued messages (non-blocking)
  std::uint64_t barriers = 0;

  bool operator==(const CommStats&) const = default;
};

/// The virtual cluster. All methods validate rank ids and message sizes.
class VirtualCluster {
 public:
  /// `num_ranks` must be a power of two (QuEST requires 2^k processes).
  /// `max_message_bytes` models the MPI message-size cap.
  VirtualCluster(int num_ranks, std::size_t max_message_bytes);

  [[nodiscard]] int num_ranks() const { return num_ranks_; }
  [[nodiscard]] std::size_t max_message_bytes() const {
    return max_message_bytes_;
  }

  /// Posts one message from `from` to `to`. The payload is copied into the
  /// queue (MPI buffered-send semantics). Throws if the payload exceeds the
  /// message cap — callers must chunk.
  void send(rank_t from, rank_t to, std::span<const std::byte> payload);

  /// Pops the oldest message from `from` to `to` into `out`, which must be
  /// exactly the message's size. Throws if no message is queued (the
  /// deterministic engine schedules sends before receives).
  void recv(rank_t from, rank_t to, std::span<std::byte> out);

  /// Number of queued messages from `from` to `to`.
  [[nodiscard]] std::size_t pending(rank_t from, rank_t to) const;

  /// True when every queue is empty — asserted by the engine after each
  /// gate so no exchange leaks into the next operation.
  [[nodiscard]] bool quiescent() const;

  /// Synchronisation marker (no-op in a single-threaded cluster; counted).
  void barrier();

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  void check_rank(rank_t r) const;

  int num_ranks_;
  std::size_t max_message_bytes_;
  // Keyed by (from, to). A map keeps memory proportional to active pairs
  // rather than num_ranks^2.
  std::map<std::pair<rank_t, rank_t>, std::deque<std::vector<std::byte>>>
      queues_;
  std::uint64_t in_flight_ = 0;
  CommStats stats_;
};

/// Splits a payload of `total_bytes` into messages of at most
/// `max_message_bytes`; returns the number of messages (the paper's "32
/// messages are exchanged per distributed gate").
[[nodiscard]] int message_count(std::uint64_t total_bytes,
                                std::size_t max_message_bytes);

}  // namespace qsv
