// Online rank-health monitoring for the virtual cluster.
//
// On the real machine the scheduler learns about sick nodes from missed
// heartbeats long before MPI surfaces a hard error; acting on that signal
// too eagerly is how one straggling node re-shards a healthy job. This
// layer reproduces that tension deterministically: ranks "heartbeat" by
// participating in exchanges (piggybacked — a gate that exchanged proves
// every participating rank alive at no extra traffic), an idle-period probe
// covers long local stretches where no exchange happens, and a
// phi-accrual-style suspicion score with hysteresis separates "late" from
// "gone".
//
// The monitor is strictly observational: suspicion NEVER triggers recovery
// (that is the hysteresis contract — one straggler must not cause a
// re-shard). Only a confirmed NodeFailure, surfaced by the transport or the
// gate-boundary fault tick, is acted on; the monitor just records it. The
// replacement-arrival stream (FaultPlan `revive@T` specs) is what arms the
// elastic grow-back — see dist/recovery_policy.
//
// Time is measured in gate indices, not wall seconds: the simulation is
// deterministic and single-process, so gates are the only monotone clock
// every rank shares. All inputs come from the driver between parallel
// regions; the monitor itself needs no locking.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace qsv {

struct HealthOptions {
  bool enabled = false;
  /// Suspicion threshold: a rank whose phi (staleness / mean heartbeat
  /// interval) reaches this becomes suspected. 8 mean-intervals of silence
  /// is far beyond any single straggle, so one late message never trips it.
  double suspect_phi = 8.0;
  /// Hysteresis: a suspected rank is only cleared once phi falls back to
  /// this (a fresh heartbeat). The band between clear_phi and suspect_phi
  /// holds the previous state, so the flag cannot flap.
  double clear_phi = 1.0;
  /// Local stretches emit a probe heartbeat for every live rank each time
  /// this many gates pass without an exchange (the idle-period probe).
  std::uint64_t probe_cadence_gates = 8;
  /// Floor for the mean-interval estimate, in gates: a burst of exchanges
  /// must not shrink the mean so far that the next local stretch looks like
  /// silence.
  double min_mean_interval = 1.0;
};

/// Per-rank heartbeat bookkeeping + suspicion scores. Drive it with one
/// observe() per applied gate; read suspicions and stats between gates.
class HealthMonitor {
 public:
  explicit HealthMonitor(int num_ranks, HealthOptions opts = {});

  [[nodiscard]] const HealthOptions& options() const { return opts_; }
  [[nodiscard]] int num_ranks() const {
    return static_cast<int>(ranks_.size());
  }

  /// One driver observation after gate `gate` completed. `exchanged` is
  /// true when the gate involved cross-rank traffic: every live rank that
  /// is not listed in `missed` heartbeats (piggybacked). Ranks in `missed`
  /// had a message fault (drop/corrupt/straggle) at this gate — their beat
  /// is withheld, which is what accrues suspicion. Local gates heartbeat
  /// nobody except through the idle probe at its cadence.
  void observe(std::uint64_t gate, bool exchanged,
               const std::vector<rank_t>& missed = {});

  /// Explicit heartbeat from rank `r` at `gate` (probes and tests).
  void heartbeat(rank_t r, std::uint64_t gate);

  /// Staleness of rank `r` at `now_gate`, in units of its mean heartbeat
  /// interval (phi-accrual style: the score grows without bound while the
  /// rank stays silent, and collapses on the next beat).
  [[nodiscard]] double phi(rank_t r, std::uint64_t now_gate) const;

  [[nodiscard]] bool suspected(rank_t r) const;

  /// A NodeFailure for `r` was confirmed by the transport or fault tick:
  /// recorded for the stats; the rank stops accruing suspicion (it is not
  /// late, it is dead).
  void confirm_failure(rank_t r, std::uint64_t gate);

  /// A replacement node arrived (a fired revive spec).
  void replacement_arrived(std::uint64_t gate);

  /// Re-shards renumber ranks (shrink merges pairs, grow-back splits them),
  /// so per-rank histories stop being meaningful: restart the bookkeeping
  /// at the new width with every rank considered freshly alive.
  void reset_width(int num_ranks, std::uint64_t gate);

  struct Stats {
    std::uint64_t beats = 0;        // heartbeats observed (incl. probes)
    std::uint64_t probes = 0;       // idle-period probe rounds emitted
    std::uint64_t suspicions = 0;   // rank transitions into suspected
    std::uint64_t clears = 0;       // suspected ranks cleared by a beat
    std::uint64_t confirmed = 0;    // confirmed node failures recorded
    std::uint64_t replacements = 0; // replacement arrivals recorded
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct RankState {
    std::uint64_t last_beat = 0;
    double mean_interval = 1.0;  // EWMA of observed beat spacing, in gates
    bool suspected = false;
    bool dead = false;
  };
  void update_suspicion(std::uint64_t now_gate);

  HealthOptions opts_;
  std::vector<RankState> ranks_;
  std::uint64_t last_exchange_gate_ = 0;
  Stats stats_;
};

}  // namespace qsv
