// Deterministic fault injection for the virtual cluster.
//
// The paper's headline runs (44 qubits on 4096 nodes, multi-hour jobs) sit
// in the regime where node failures are expected events, not anomalies. The
// real machine loses nodes, drops/corrupts link-level messages (surfacing
// as MPI timeouts) and suffers stragglers; our failure-free virtual cluster
// models none of that. This header adds a seeded, fully deterministic fault
// model: a FaultPlan lists *what* goes wrong and *when* (by gate index or
// global message ordinal, or probabilistically from per-node MTBF), and a
// FaultInjector executes the plan during a run, recording every fired event
// so two runs with the same plan are bit-identical — asserted by tests.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace qsv {

/// Unrecoverable loss of a node (or retries exhausted against one): the
/// typed error a resilience layer catches to trigger recovery — spare-node
/// substitution, shrink-to-survive re-sharding, or restart-from-checkpoint.
class NodeFailure : public Error {
 public:
  NodeFailure(const std::string& what, rank_t rank, std::uint64_t gate_index,
              bool at_gate_boundary = false)
      : Error(what),
        rank_(rank),
        gate_index_(gate_index),
        at_gate_boundary_(at_gate_boundary) {}

  [[nodiscard]] rank_t rank() const { return rank_; }
  [[nodiscard]] std::uint64_t gate_index() const { return gate_index_; }
  /// True when the failure fired at a gate boundary (tick before any work
  /// of the gate), so every surviving slice holds a consistent pre-gate
  /// state. False for mid-exchange detections, where surviving slices may
  /// be partially combined — only a full restart can recover those.
  [[nodiscard]] bool at_gate_boundary() const { return at_gate_boundary_; }

 private:
  rank_t rank_;
  std::uint64_t gate_index_;
  bool at_gate_boundary_;
};

/// Transient communication fault (retryable): the base the engine's bounded
/// retry loop catches. Fault-free runs never see these.
class CommFault : public Error {
 public:
  using Error::Error;
};

/// A receive that found no message: models an MPI timeout after a drop.
class CommTimeout : public CommFault {
 public:
  using CommFault::CommFault;
};

/// A delivered message whose payload failed its integrity check.
class CommCorrupt : public CommFault {
 public:
  using CommFault::CommFault;
};

enum class FaultKind {
  kNodeFailure,  // a rank dies at a gate index (checkpoint/restart territory)
  kDropMessage,  // a message is sent but never delivered (-> recv timeout)
  kCorruptMessage,  // a delivered message has a flipped payload byte
  kStraggler,    // a message is delivered late (charged as idle time)
  kBitFlip,      // silent corruption: a resident amplitude bit flips in DRAM
  kRevive,       // a replacement node joins the allocation at a gate index
                 // (the elastic grow-back trigger, not a fault per se)
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// One planned fault. Message faults trigger on the Nth message the cluster
/// carries (1-based ordinal over the whole run); node failures trigger when
/// the engine starts the gate with this 0-based index.
struct FaultSpec {
  FaultKind kind{};
  /// Affected rank: the dying rank for kNodeFailure, the sender for message
  /// faults (-1 = any sender).
  rank_t rank = -1;
  /// 1-based message ordinal (message faults): global under the injector's
  /// default scope, per-sender under OrdinalScope::kPerSender.
  std::uint64_t at_message = 0;
  /// 0-based gate index (kNodeFailure, kBitFlip).
  std::uint64_t at_gate = 0;
  /// Added latency for kStraggler, seconds.
  double delay_s = 0;
  /// Bit to flip within the 128-bit resident amplitude (kBitFlip); -1 draws
  /// one at random from the plan's seeded stream.
  int bit = -1;

  bool operator==(const FaultSpec&) const = default;
};

/// The full deterministic schedule of faults for a run: explicit one-shot
/// specs plus optional per-message probabilities drawn from a seeded stream.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  /// Per-message probabilities (evaluated in this order: drop, corrupt,
  /// straggle) using the plan's seed; 0 disables the draw entirely, keeping
  /// purely explicit plans RNG-free.
  double drop_prob = 0;
  double corrupt_prob = 0;
  double straggler_prob = 0;
  double straggler_delay_s = 0;
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const {
    return specs.empty() && drop_prob == 0 && corrupt_prob == 0 &&
           straggler_prob == 0;
  }
};

/// Draws node-failure times from per-node exponential lifetimes with mean
/// `node_mtbf_s`, converts them to gate indices at `seconds_per_gate`, and
/// returns a plan holding every failure landing inside `num_gates`.
/// Deterministic for a fixed seed.
[[nodiscard]] FaultPlan sample_node_failures(double node_mtbf_s,
                                             double seconds_per_gate,
                                             std::uint64_t num_gates,
                                             int num_ranks,
                                             std::uint64_t seed);

/// Parses a comma-separated fault list, e.g.
///   "fail@120:2, drop@5, corrupt@9:1, delay@3:0.25, bitflip@40:1"
/// where `fail@G[:R]` kills rank R (default 0) at gate G, `drop@M` /
/// `corrupt@M[:R]` hit the Mth message (optionally only if sent by R),
/// `delay@M:S` delays the Mth message by S seconds, `bitflip@G[:R[:B]]`
/// flips bit B (default: random) of a random resident amplitude on rank R
/// (default 0) before gate G, and `revive@G[:R]` announces a replacement
/// node (optionally earmarked for rank R) joining the allocation at gate G —
/// the deterministic arrival stream the elastic grow-back consumes. Throws
/// qsv::Error on malformed specs.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

/// A fault that actually fired during a run (the deterministic event
/// stream; two runs with the same plan produce identical logs).
struct FaultEvent {
  FaultKind kind{};
  rank_t rank = -1;        // dying rank / sender
  rank_t peer = -1;        // receiver for message faults
  std::uint64_t message = 0;  // global message ordinal (message faults)
  std::uint64_t gate = 0;     // gate index when the fault fired
  double delay_s = 0;
  int bit = -1;               // flipped amplitude bit (kBitFlip)

  bool operator==(const FaultEvent&) const = default;
};

/// Executes a FaultPlan against a run. The VirtualCluster consults it on
/// every message; the engine consults it at every gate boundary. All
/// decisions are functions of (plan, message ordinal, gate index) only.
/// Every mutating entry point is internally synchronised, so concurrent
/// rank threads can consult one injector; log() and totals() return
/// references and must only be read between parallel regions.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// How message ordinals are counted.
  ///
  /// kGlobal (default, the serial engine): one counter over every message
  /// the cluster carries, in program order — `drop@M` means the Mth message
  /// of the run. Meaningless under concurrent ranks, where the interleaving
  /// of senders is scheduling-dependent.
  ///
  /// kPerSender (the threaded engine): each sender has its own 1-based
  /// ordinal and its own RNG stream (derived from the plan seed and the
  /// sender id), making every verdict a pure function of (plan, sender,
  /// per-sender ordinal) — thread-safe and ordering-stable per rank no
  /// matter how the scheduler interleaves senders. `drop@M:R` means the Mth
  /// message *sent by rank R*; a message spec without a rank binds to
  /// sender 0.
  enum class OrdinalScope { kGlobal, kPerSender };
  void set_scope(OrdinalScope scope) {
    std::lock_guard<std::mutex> lk(m_);
    scope_ = scope;
  }
  [[nodiscard]] OrdinalScope scope() const {
    std::lock_guard<std::mutex> lk(m_);
    return scope_;
  }

  /// Verdict for one message about to be carried from `from` to `to`.
  enum class Verdict { kDeliver, kDrop, kCorrupt, kDelay };
  struct MessageOutcome {
    Verdict verdict = Verdict::kDeliver;
    double delay_s = 0;
    /// kDelay only: the straggler lands after the receiver's watchdog gives
    /// up, so the message is never consumed — the transport must drop it and
    /// the matching recv surfaces a CommTimeout, not a silent late success.
    bool past_deadline = false;
  };
  /// Draw order when several specs land on the same message ordinal: every
  /// matching one-shot latch fires, and the *most severe* verdict wins —
  /// drop > corrupt > straggle — because a dropped message makes a companion
  /// corruption or delay moot (nothing is delivered). Only the winning event
  /// is logged and charged. `recv_deadline_s` is the receiver watchdog
  /// deadline; a straggler strictly exceeding it is flagged past_deadline
  /// and its delay is *not* charged to the gate (the retry layer charges the
  /// watchdog wait instead — charging both would double-count).
  [[nodiscard]] MessageOutcome on_message(
      rank_t from, rank_t to,
      double recv_deadline_s = std::numeric_limits<double>::infinity());

  /// Called by the engine when gate `index` starts; returns the rank that
  /// dies at this gate, if any (the engine then throws NodeFailure).
  [[nodiscard]] std::optional<rank_t> on_gate(std::uint64_t index);

  /// Silent-corruption events due before gate `index`: each names a rank, a
  /// raw 64-bit amplitude draw (the engine reduces it modulo its local
  /// amplitude count) and a bit in [0, 128) of the complex amplitude. Specs
  /// are one-shot and the draws come from a dedicated seeded stream, so a
  /// rollback-and-replay neither re-corrupts nor perturbs message faults.
  struct BitFlipSpec {
    rank_t rank = 0;
    std::uint64_t amp_draw = 0;
    int bit = 0;
  };
  [[nodiscard]] std::vector<BitFlipSpec> bitflips_at_gate(
      std::uint64_t index);

  /// True once `rank` has died and not been replaced by a restart.
  [[nodiscard]] bool rank_dead(rank_t rank) const;

  /// Gate index most recently announced via on_gate (for error reporting).
  [[nodiscard]] std::uint64_t current_gate() const {
    std::lock_guard<std::mutex> lk(m_);
    return current_gate_;
  }

  /// Records an engine-level retry (for the per-gate accounting the cost
  /// model charges as extra traffic + backoff idle time).
  void record_retry(std::uint64_t bytes, int messages, double backoff_s);

  /// Per-gate accounting, drained by the engine when it emits the gate's
  /// execution event.
  struct GateFaultCharges {
    std::uint64_t retry_bytes = 0;
    int retry_messages = 0;
    double delay_s = 0;  // straggler latency + retry backoff
  };
  [[nodiscard]] GateFaultCharges take_gate_charges();

  /// A restart replaces dead nodes with fresh ones: clears the dead set.
  /// Already-fired one-shot specs stay fired, so the same failure does not
  /// recur on replay.
  void restart();

  /// Spare-node substitution replaces exactly one dead rank with a fresh
  /// node bound to the same rank id: removes `rank` from the dead set
  /// without touching other dead ranks or any one-shot latches.
  void revive(rank_t rank);

  /// Drains the replacement-arrival stream: fires (and logs) every kRevive
  /// spec whose gate index is <= `up_to_gate`, returning how many fired.
  /// One-shot like every spec: a drained arrival never re-fires on replay.
  /// The recovery driver polls this at gate boundaries and triggers the
  /// grow-back re-shard when it returns non-zero.
  [[nodiscard]] std::size_t take_revivals(std::uint64_t up_to_gate);

  /// kRevive specs not yet fired: whether a replacement node is still
  /// expected to arrive later in the run (feeds TierContext so choose_tier
  /// can prefer shrink-now-grow-back-later over shrink-forever).
  [[nodiscard]] std::size_t pending_revivals() const;

  /// Every fault that fired, in firing order.
  [[nodiscard]] const std::vector<FaultEvent>& log() const { return log_; }

  /// Totals over the whole run (including across restarts).
  struct Totals {
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t straggled = 0;
    std::uint64_t node_failures = 0;
    std::uint64_t bitflips = 0;
    std::uint64_t revivals = 0;
    std::uint64_t retries = 0;
    std::uint64_t retry_bytes = 0;
    double delay_s = 0;
  };
  [[nodiscard]] const Totals& totals() const { return totals_; }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Stream for `from` under kPerSender: lazily seeded from the plan seed
  /// and the sender id, so it is a pure function of both. Call under m_.
  Rng& rng_for_sender(rank_t from);

  FaultPlan plan_;
  std::vector<bool> fired_;  // one-shot latch per spec
  std::vector<rank_t> dead_;
  Rng rng_;
  Rng bitflip_rng_;  // separate stream: bitflips never shift message draws
  OrdinalScope scope_ = OrdinalScope::kGlobal;
  std::uint64_t message_counter_ = 0;
  std::map<rank_t, std::uint64_t> sender_counters_;  // kPerSender ordinals
  std::map<rank_t, Rng> sender_rngs_;                // kPerSender streams
  std::uint64_t current_gate_ = 0;
  GateFaultCharges gate_charges_;
  Totals totals_;
  std::vector<FaultEvent> log_;
  mutable std::mutex m_;
};

}  // namespace qsv
