#include "cluster/cluster.hpp"

#include <algorithm>
#include <string>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace qsv {

VirtualCluster::VirtualCluster(int num_ranks, std::size_t max_message_bytes)
    : num_ranks_(num_ranks), max_message_bytes_(max_message_bytes) {
  QSV_REQUIRE(num_ranks >= 1, "need at least one rank");
  QSV_REQUIRE(bits::is_pow2(static_cast<std::uint64_t>(num_ranks)),
              "QuEST-style decomposition requires a power-of-two rank count");
  QSV_REQUIRE(max_message_bytes >= kBytesPerAmp,
              "message cap below one amplitude");
}

void VirtualCluster::check_rank(rank_t r) const {
  QSV_REQUIRE(r >= 0 && r < num_ranks_,
              "rank out of range: " + std::to_string(r));
}

void VirtualCluster::send(rank_t from, rank_t to,
                          std::span<const std::byte> payload) {
  check_rank(from);
  check_rank(to);
  QSV_REQUIRE(from != to, "self-send is not a message");
  QSV_REQUIRE(payload.size() <= max_message_bytes_,
              "message exceeds the MPI size cap; chunk the payload");
  queues_[{from, to}].emplace_back(payload.begin(), payload.end());
  ++in_flight_;
  ++stats_.messages;
  stats_.bytes += payload.size();
  stats_.max_message_bytes =
      std::max<std::uint64_t>(stats_.max_message_bytes, payload.size());
  stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
}

void VirtualCluster::recv(rank_t from, rank_t to, std::span<std::byte> out) {
  check_rank(from);
  check_rank(to);
  auto it = queues_.find({from, to});
  QSV_REQUIRE(it != queues_.end() && !it->second.empty(),
              "recv with no matching message queued (from " +
                  std::to_string(from) + " to " + std::to_string(to) + ")");
  const std::vector<std::byte>& msg = it->second.front();
  QSV_REQUIRE(msg.size() == out.size(),
              "recv buffer size does not match the message size");
  std::copy(msg.begin(), msg.end(), out.begin());
  it->second.pop_front();
  --in_flight_;
  if (it->second.empty()) {
    queues_.erase(it);
  }
}

std::size_t VirtualCluster::pending(rank_t from, rank_t to) const {
  const auto it = queues_.find({from, to});
  return it == queues_.end() ? 0 : it->second.size();
}

bool VirtualCluster::quiescent() const { return in_flight_ == 0; }

void VirtualCluster::barrier() { ++stats_.barriers; }

int message_count(std::uint64_t total_bytes, std::size_t max_message_bytes) {
  QSV_REQUIRE(max_message_bytes > 0, "zero message cap");
  if (total_bytes == 0) {
    return 0;
  }
  return static_cast<int>((total_bytes + max_message_bytes - 1) /
                          max_message_bytes);
}

}  // namespace qsv
