#include "cluster/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "cluster/faults.hpp"
#include "common/bits.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"

namespace qsv {
namespace {

std::chrono::duration<double> deadline_of(double seconds) {
  return std::chrono::duration<double>(seconds);
}

}  // namespace

VirtualCluster::VirtualCluster(int num_ranks, std::size_t max_message_bytes,
                               double recv_deadline_s)
    : num_ranks_(num_ranks),
      max_message_bytes_(max_message_bytes),
      recv_deadline_s_(recv_deadline_s) {
  QSV_REQUIRE(num_ranks >= 1, "need at least one rank");
  QSV_REQUIRE(bits::is_pow2(static_cast<std::uint64_t>(num_ranks)),
              "QuEST-style decomposition requires a power-of-two rank count");
  QSV_REQUIRE(max_message_bytes >= kBytesPerAmp,
              "message cap below one amplitude");
  QSV_REQUIRE(recv_deadline_s > 0, "watchdog deadline must be positive");
}

void VirtualCluster::check_rank(rank_t r) const {
  QSV_REQUIRE(r >= 0 && r < num_ranks_,
              "rank out of range: " + std::to_string(r) + " (cluster has " +
                  std::to_string(num_ranks_) + " ranks)");
}

void VirtualCluster::check_alive(rank_t from, rank_t to) const {
  if (injector_ == nullptr) {
    return;
  }
  for (rank_t r : {from, to}) {
    if (injector_->rank_dead(r)) {
      throw NodeFailure("rank " + std::to_string(r) +
                            " is down (message " + std::to_string(from) +
                            " -> " + std::to_string(to) + ")",
                        r, injector_->current_gate());
    }
  }
}

void VirtualCluster::enable_concurrent(std::size_t capacity_messages) {
  QSV_REQUIRE(capacity_messages >= 1,
              "concurrent mailboxes need capacity for at least one message");
  std::lock_guard<std::mutex> lk(m_);
  QSV_REQUIRE(in_flight_ == 0,
              "enable_concurrent requires a quiescent cluster");
  concurrent_ = true;
  capacity_messages_ = capacity_messages;
}

void VirtualCluster::send(rank_t from, rank_t to,
                          std::span<const std::byte> payload) {
  send(from, to, payload, kAnyTag);
}

void VirtualCluster::send(rank_t from, rank_t to,
                          std::span<const std::byte> payload, int tag) {
  check_rank(from);
  check_rank(to);
  QSV_REQUIRE(from != to, "self-send is not a message (rank " +
                              std::to_string(from) + ")");
  QSV_REQUIRE(payload.size() <= max_message_bytes_,
              "message " + std::to_string(from) + " -> " +
                  std::to_string(to) + " of " +
                  std::to_string(payload.size()) +
                  " bytes exceeds the MPI size cap of " +
                  std::to_string(max_message_bytes_) +
                  " bytes; chunk the payload");
  check_alive(from, to);

  bool deliver = true;
  bool corrupt_in_flight = false;
  if (injector_ != nullptr) {
    // The injector is internally synchronised; consulting it outside the
    // transport lock keeps verdict draws off the mailbox critical path.
    const FaultInjector::MessageOutcome out =
        injector_->on_message(from, to, recv_deadline_s_);
    switch (out.verdict) {
      case FaultInjector::Verdict::kDrop:
        deliver = false;  // never enqueued: the matching recv times out
        break;
      case FaultInjector::Verdict::kCorrupt:
        corrupt_in_flight = true;  // bookkeeping only; detection is the CRC
        break;
      case FaultInjector::Verdict::kDelay:
        if (out.past_deadline) {
          // The straggler lands after the receiver's watchdog gives up:
          // never consumed, so the matching recv must time out.
          deliver = false;
        }
        break;  // in-deadline latency is an accounting matter
      case FaultInjector::Verdict::kDeliver:
        break;
    }
  }

  // The payload copy and checksum are the expensive part of a send; they
  // happen outside the lock so concurrent senders overlap. The checksum is
  // computed over the bytes the sender handed us, *before* any in-flight
  // corruption: that is what makes detection end-to-end.
  Message msg;
  if (deliver) {
    msg = Message{std::vector<std::byte>(payload.begin(), payload.end()),
                  crc32(payload.data(), payload.size()), tag};
    if (corrupt_in_flight && !msg.data.empty()) {
      msg.data[msg.data.size() / 2] ^= std::byte{0x01};  // single bit flip
    }
  }

  std::unique_lock<std::mutex> lk(m_);
  // The wire carries the message whether or not it arrives: dropped and
  // corrupted sends are real traffic (and get re-sent by the retry layer).
  ++stats_.messages;
  stats_.bytes += payload.size();
  stats_.max_message_bytes =
      std::max<std::uint64_t>(stats_.max_message_bytes, payload.size());
  if (!deliver) {
    return;
  }
  const std::pair<rank_t, rank_t> key{from, to};
  // A drained mailbox is erased from the map (recv, purge_*, reset_queues),
  // so a reference into queues_ must never be held across a wait: re-find
  // the node each time the predicate runs and treat a missing entry as
  // free space.
  const auto mailbox_depth = [&] {
    const auto it = queues_.find(key);
    return it == queues_.end() ? std::size_t{0} : it->second.size();
  };
  if (concurrent_ && mailbox_depth() >= capacity_messages_) {
    // Buffered-send backpressure, bounded by the same watchdog deadline as
    // a receive: a receiver that stopped draining must not hang the sender.
    const bool freed =
        cv_send_.wait_for(lk, deadline_of(recv_deadline_s_),
                          [&] { return mailbox_depth() < capacity_messages_; });
    if (!freed) {
      throw CommTimeout("send " + std::to_string(from) + " -> " +
                        std::to_string(to) + " timed out: mailbox full (" +
                        std::to_string(mailbox_depth()) + " of " +
                        std::to_string(capacity_messages_) +
                        " messages) after the " +
                        std::to_string(recv_deadline_s_) +
                        " s watchdog deadline");
    }
  }
  queues_[key].push_back(std::move(msg));
  ++in_flight_;
  stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
  if (concurrent_) {
    cv_recv_.notify_all();
  }
}

void VirtualCluster::recv(rank_t from, rank_t to, std::span<std::byte> out) {
  recv(from, to, out, kAnyTag);
}

void VirtualCluster::recv(rank_t from, rank_t to, std::span<std::byte> out,
                          int tag) {
  check_rank(from);
  check_rank(to);
  check_alive(from, to);
  Message msg;
  {
    std::unique_lock<std::mutex> lk(m_);
    // MPI tag matching: a wildcard request takes the oldest message; a
    // tagged request takes the oldest message carrying that tag, leaving
    // out-of-order arrivals (chunk k+1 before chunk k) queued for their own
    // receives. Iterators are re-found under the lock on every predicate
    // run — a concurrent recv/purge may have reshaped the deque.
    std::deque<Message>::iterator m;
    const auto queued = [&] {
      const auto it = queues_.find({from, to});
      if (it == queues_.end()) {
        return false;
      }
      for (auto mi = it->second.begin(); mi != it->second.end(); ++mi) {
        if (tag == kAnyTag || mi->tag == tag) {
          m = mi;
          return true;
        }
      }
      return false;
    };
    if (concurrent_ && !queued()) {
      // Blocking mailbox receive: the sender thread may simply not have
      // arrived yet. The watchdog deadline turns a genuinely missing
      // message (dropped, or the sender died) into the same CommTimeout
      // the serial transport throws immediately.
      cv_recv_.wait_for(lk, deadline_of(recv_deadline_s_), queued);
    }
    if (!queued()) {
      throw CommTimeout("recv " + std::to_string(from) + " -> " +
                        std::to_string(to) +
                        (tag == kAnyTag ? std::string{}
                                        : " (tag " + std::to_string(tag) +
                                              ")") +
                        " timed out: no matching message queued after the " +
                        std::to_string(recv_deadline_s_) +
                        " s watchdog deadline (queue depth 0, message cap " +
                        std::to_string(max_message_bytes_) + " bytes)");
    }
    const auto it = queues_.find({from, to});
    if (m->data.size() != out.size()) {
      const std::string detail =
          "recv " + std::to_string(from) + " -> " + std::to_string(to) +
          ": buffer of " + std::to_string(out.size()) +
          " bytes does not match the queued message of " +
          std::to_string(m->data.size()) + " bytes (queue depth " +
          std::to_string(it->second.size()) + ", message cap " +
          std::to_string(max_message_bytes_) + " bytes)";
      QSV_REQUIRE(false, detail);
    }
    msg = std::move(*m);
    it->second.erase(m);
    --in_flight_;
    if (it->second.empty()) {
      queues_.erase(it);
    }
    if (concurrent_) {
      cv_send_.notify_all();
    }
  }
  // End-to-end verification: recompute the checksum over what actually
  // arrived and compare against what the sender computed. No injector state
  // is consulted here. Copy + CRC run outside the lock.
  std::copy(msg.data.begin(), msg.data.end(), out.begin());
  const std::uint32_t got_crc = crc32(out.data(), out.size());
  std::lock_guard<std::mutex> lk(m_);
  if (got_crc != msg.crc) {
    ++stats_.checksum_failures;
    throw CommCorrupt("recv " + std::to_string(from) + " -> " +
                      std::to_string(to) + ": payload CRC-32 mismatch (sent " +
                      std::to_string(msg.crc) + ", received " +
                      std::to_string(got_crc) + ")");
  }
  ++stats_.delivered;
}

std::size_t VirtualCluster::pending(rank_t from, rank_t to) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = queues_.find({from, to});
  return it == queues_.end() ? 0 : it->second.size();
}

void VirtualCluster::purge_pair(rank_t a, rank_t b) {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto key : {std::pair<rank_t, rank_t>{a, b},
                         std::pair<rank_t, rank_t>{b, a}}) {
    const auto it = queues_.find(key);
    if (it != queues_.end()) {
      in_flight_ -= it->second.size();
      queues_.erase(it);
    }
  }
  if (concurrent_) {
    cv_send_.notify_all();
  }
}

void VirtualCluster::purge_tag(rank_t a, rank_t b, int tag) {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto key : {std::pair<rank_t, rank_t>{a, b},
                         std::pair<rank_t, rank_t>{b, a}}) {
    const auto it = queues_.find(key);
    if (it == queues_.end()) {
      continue;
    }
    auto& q = it->second;
    for (auto m = q.begin(); m != q.end();) {
      if (m->tag == tag) {
        m = q.erase(m);
        --in_flight_;
      } else {
        ++m;
      }
    }
    if (q.empty()) {
      queues_.erase(it);
    }
  }
  if (concurrent_) {
    cv_send_.notify_all();
  }
}

void VirtualCluster::purge_rank(rank_t rank) {
  check_rank(rank);
  std::lock_guard<std::mutex> lk(m_);
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (it->first.first == rank || it->first.second == rank) {
      in_flight_ -= it->second.size();
      it = queues_.erase(it);
    } else {
      ++it;
    }
  }
  if (concurrent_) {
    cv_send_.notify_all();
  }
}

void VirtualCluster::shrink_to(int new_num_ranks) {
  QSV_REQUIRE(new_num_ranks >= 1, "need at least one rank");
  QSV_REQUIRE(bits::is_pow2(static_cast<std::uint64_t>(new_num_ranks)),
              "QuEST-style decomposition requires a power-of-two rank count");
  QSV_REQUIRE(new_num_ranks < num_ranks_,
              "shrink_to must reduce the rank count (have " +
                  std::to_string(num_ranks_) + ", asked for " +
                  std::to_string(new_num_ranks) + ")");
  std::lock_guard<std::mutex> lk(m_);
  QSV_REQUIRE(in_flight_ == 0,
              "shrink_to requires a quiescent cluster: " +
                  std::to_string(in_flight_) + " messages still in flight");
  num_ranks_ = new_num_ranks;
}

void VirtualCluster::grow_to(int new_num_ranks) {
  QSV_REQUIRE(bits::is_pow2(static_cast<std::uint64_t>(new_num_ranks)),
              "QuEST-style decomposition requires a power-of-two rank count");
  QSV_REQUIRE(new_num_ranks > num_ranks_,
              "grow_to must increase the rank count (have " +
                  std::to_string(num_ranks_) + ", asked for " +
                  std::to_string(new_num_ranks) + ")");
  std::lock_guard<std::mutex> lk(m_);
  QSV_REQUIRE(in_flight_ == 0,
              "grow_to requires a quiescent cluster: " +
                  std::to_string(in_flight_) + " messages still in flight");
  num_ranks_ = new_num_ranks;
}

void VirtualCluster::reset_queues() {
  std::lock_guard<std::mutex> lk(m_);
  queues_.clear();
  in_flight_ = 0;
  if (concurrent_) {
    cv_send_.notify_all();
  }
}

bool VirtualCluster::quiescent() const {
  std::lock_guard<std::mutex> lk(m_);
  return in_flight_ == 0;
}

void VirtualCluster::barrier() {
  std::lock_guard<std::mutex> lk(m_);
  ++stats_.barriers;
  stats_.barrier_arrivals += static_cast<std::uint64_t>(num_ranks_);
}

void VirtualCluster::barrier(rank_t r) {
  check_rank(r);
  std::unique_lock<std::mutex> lk(m_);
  ++stats_.barrier_arrivals;
  const std::uint64_t epoch = barrier_epoch_;
  if (++barrier_waiting_ == num_ranks_) {
    barrier_waiting_ = 0;
    ++barrier_epoch_;
    ++stats_.barriers;
    cv_barrier_.notify_all();
    return;
  }
  const bool released =
      cv_barrier_.wait_for(lk, deadline_of(recv_deadline_s_),
                           [&] { return barrier_epoch_ != epoch; });
  if (!released) {
    // Withdraw so a later complete barrier is not corrupted by our ghost;
    // the arrival stat is withdrawn too, preserving the invariant that
    // every completed barrier contributes exactly one arrival per rank.
    --barrier_waiting_;
    --stats_.barrier_arrivals;
    throw CommTimeout("barrier: rank " + std::to_string(r) +
                      " waited " + std::to_string(recv_deadline_s_) +
                      " s but only " + std::to_string(barrier_waiting_ + 1) +
                      " of " + std::to_string(num_ranks_) +
                      " ranks arrived");
  }
}

int message_count(std::uint64_t total_bytes, std::size_t max_message_bytes) {
  QSV_REQUIRE(max_message_bytes > 0, "zero message cap");
  if (total_bytes == 0) {
    return 0;
  }
  return static_cast<int>((total_bytes + max_message_bytes - 1) /
                          max_message_bytes);
}

}  // namespace qsv
