#include "cluster/health.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qsv {

HealthMonitor::HealthMonitor(int num_ranks, HealthOptions opts)
    : opts_(opts), ranks_(static_cast<std::size_t>(num_ranks)) {
  QSV_REQUIRE(num_ranks >= 1, "health monitor needs at least one rank");
  QSV_REQUIRE(opts_.clear_phi <= opts_.suspect_phi,
              "health hysteresis requires clear_phi <= suspect_phi");
}

void HealthMonitor::heartbeat(rank_t r, std::uint64_t gate) {
  if (r < 0 || r >= num_ranks()) {
    return;
  }
  RankState& s = ranks_[static_cast<std::size_t>(r)];
  // A beat from a confirmed-dead rank means a fresh node took the id over
  // (substitution): resume the bookkeeping.
  s.dead = false;
  if (gate > s.last_beat) {
    const double interval = static_cast<double>(gate - s.last_beat);
    s.mean_interval = 0.8 * s.mean_interval + 0.2 * interval;
  }
  s.last_beat = gate;
  ++stats_.beats;
}

double HealthMonitor::phi(rank_t r, std::uint64_t now_gate) const {
  if (r < 0 || r >= num_ranks()) {
    return 0;
  }
  const RankState& s = ranks_[static_cast<std::size_t>(r)];
  if (s.dead || now_gate <= s.last_beat) {
    return 0;
  }
  const double staleness = static_cast<double>(now_gate - s.last_beat);
  return staleness / std::max(s.mean_interval, opts_.min_mean_interval);
}

bool HealthMonitor::suspected(rank_t r) const {
  if (r < 0 || r >= num_ranks()) {
    return false;
  }
  return ranks_[static_cast<std::size_t>(r)].suspected;
}

void HealthMonitor::update_suspicion(std::uint64_t now_gate) {
  for (rank_t r = 0; r < num_ranks(); ++r) {
    RankState& s = ranks_[static_cast<std::size_t>(r)];
    if (s.dead) {
      continue;
    }
    const double p = phi(r, now_gate);
    if (!s.suspected && p >= opts_.suspect_phi) {
      s.suspected = true;
      ++stats_.suspicions;
    } else if (s.suspected && p <= opts_.clear_phi) {
      // Only a fresh beat can bring phi back down: this is the clear edge
      // of the hysteresis band.
      s.suspected = false;
      ++stats_.clears;
    }
  }
}

void HealthMonitor::observe(std::uint64_t gate, bool exchanged,
                            const std::vector<rank_t>& missed) {
  const auto is_missed = [&missed](rank_t r) {
    return std::find(missed.begin(), missed.end(), r) != missed.end();
  };
  if (exchanged) {
    // Piggybacked beats: the exchange itself proves every participating
    // rank alive. A rank whose message faulted this gate is withheld.
    for (rank_t r = 0; r < num_ranks(); ++r) {
      if (!ranks_[static_cast<std::size_t>(r)].dead && !is_missed(r)) {
        heartbeat(r, gate);
      }
    }
    last_exchange_gate_ = gate;
  } else if (opts_.probe_cadence_gates > 0 &&
             gate - last_exchange_gate_ >= opts_.probe_cadence_gates) {
    // Idle-period probe: a long local stretch carries no traffic, so poll
    // liveness out of band at the configured cadence.
    ++stats_.probes;
    for (rank_t r = 0; r < num_ranks(); ++r) {
      if (!ranks_[static_cast<std::size_t>(r)].dead && !is_missed(r)) {
        heartbeat(r, gate);
      }
    }
    last_exchange_gate_ = gate;
  }
  update_suspicion(gate);
}

void HealthMonitor::confirm_failure(rank_t r, std::uint64_t gate) {
  if (r < 0 || r >= num_ranks()) {
    return;
  }
  RankState& s = ranks_[static_cast<std::size_t>(r)];
  if (!s.dead) {
    s.dead = true;
    s.suspected = false;  // not late — gone; suspicion is moot
    s.last_beat = gate;
    ++stats_.confirmed;
  }
}

void HealthMonitor::replacement_arrived(std::uint64_t gate) {
  (void)gate;
  ++stats_.replacements;
}

void HealthMonitor::reset_width(int num_ranks, std::uint64_t gate) {
  QSV_REQUIRE(num_ranks >= 1, "health monitor needs at least one rank");
  RankState fresh;
  fresh.last_beat = gate;
  ranks_.assign(static_cast<std::size_t>(num_ranks), fresh);
  last_exchange_gate_ = gate;
}

}  // namespace qsv
