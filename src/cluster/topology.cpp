#include "cluster/topology.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace qsv {

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::istringstream in(text);
  std::string range;
  while (std::getline(in, range, ',')) {
    const auto b = range.find_first_not_of(" \t\n");
    if (b == std::string::npos) {
      continue;
    }
    const auto e = range.find_last_not_of(" \t\n");
    const std::string token = range.substr(b, e - b + 1);
    const auto dash = token.find('-');
    int lo = 0;
    int hi = 0;
    std::istringstream first(token.substr(0, dash));
    first >> lo;
    QSV_REQUIRE(!first.fail(), "cpulist: bad token '" + token + "'");
    if (dash == std::string::npos) {
      hi = lo;
    } else {
      std::istringstream second(token.substr(dash + 1));
      second >> hi;
      QSV_REQUIRE(!second.fail() && hi >= lo,
                  "cpulist: bad range '" + token + "'");
    }
    for (int c = lo; c <= hi; ++c) {
      cpus.push_back(c);
    }
  }
  return cpus;
}

HostTopology discover_host_topology() {
  HostTopology topo;
#if defined(__linux__)
  // Node ids are not guaranteed contiguous; probe with a generous bound.
  for (int node = 0; node < 256; ++node) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(node) +
                     "/cpulist");
    if (!in) {
      continue;
    }
    std::string line;
    std::getline(in, line);
    std::vector<int> cpus = parse_cpulist(line);
    if (cpus.empty()) {
      continue;  // memory-only node: no thread can live there
    }
    NumaDomain d;
    d.id = node;
    d.cpus = std::move(cpus);
    topo.domains.push_back(std::move(d));
  }
  topo.from_sysfs = !topo.domains.empty();
#endif
  if (topo.domains.empty()) {
    NumaDomain d;
    d.id = 0;
    const int n = std::max(1u, std::thread::hardware_concurrency());
    for (int c = 0; c < n; ++c) {
      d.cpus.push_back(c);
    }
    topo.domains.push_back(std::move(d));
  }
  for (const NumaDomain& d : topo.domains) {
    topo.total_cpus += static_cast<int>(d.cpus.size());
  }
  return topo;
}

const char* placement_policy_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kCompact: return "compact";
    case PlacementPolicy::kScatter: return "scatter";
    case PlacementPolicy::kNone: return "none";
  }
  return "?";
}

std::optional<PlacementPolicy> parse_placement_policy(
    const std::string& text) {
  if (text == "compact") return PlacementPolicy::kCompact;
  if (text == "scatter") return PlacementPolicy::kScatter;
  if (text == "none") return PlacementPolicy::kNone;
  return std::nullopt;
}

PlacementPlan plan_placement(const HostTopology& topo, int num_ranks,
                             PlacementPolicy policy) {
  QSV_REQUIRE(num_ranks >= 1, "placement needs at least one rank");
  QSV_REQUIRE(!topo.domains.empty(), "placement needs at least one domain");
  PlacementPlan plan;
  plan.policy = policy;
  plan.domain_of_rank.resize(static_cast<std::size_t>(num_ranks));
  if (policy != PlacementPolicy::kNone) {
    plan.cpu_of_rank.resize(static_cast<std::size_t>(num_ranks));
  }

  const int domains = static_cast<int>(topo.domains.size());
  int host_cpus = 0;
  for (const NumaDomain& d : topo.domains) {
    host_cpus += static_cast<int>(d.cpus.size());
  }
  QSV_REQUIRE(host_cpus >= 1, "placement needs at least one CPU");
  for (int r = 0; r < num_ranks; ++r) {
    int di = 0;
    int cpu = 0;
    if (policy == PlacementPolicy::kScatter) {
      // Scatter round-robins ranks across domains; each domain hands out
      // its CPUs in order, wrapping when ranks outnumber them
      // (oversubscription still gets a stable assignment).
      di = r % domains;
      const NumaDomain& d = topo.domains[static_cast<std::size_t>(di)];
      cpu = d.cpus[static_cast<std::size_t>(r / domains) % d.cpus.size()];
    } else {
      // Compact exhausts a domain's CPUs before spilling to the next, so
      // co-resident ranks share an LLC and exchange pairs stay local as
      // long as a domain has room; ranks beyond the host's CPU count wrap
      // back to domain 0. kNone uses the same domain map so cross-domain
      // pricing has a defined answer.
      int slot = r % host_cpus;
      while (slot >=
             static_cast<int>(topo.domains[static_cast<std::size_t>(di)]
                                  .cpus.size())) {
        slot -= static_cast<int>(
            topo.domains[static_cast<std::size_t>(di)].cpus.size());
        ++di;
      }
      cpu = topo.domains[static_cast<std::size_t>(di)]
                .cpus[static_cast<std::size_t>(slot)];
    }
    plan.domain_of_rank[static_cast<std::size_t>(r)] = di;
    if (policy != PlacementPolicy::kNone) {
      plan.cpu_of_rank[static_cast<std::size_t>(r)] = cpu;
    }
  }
  return plan;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

namespace {

#if defined(__linux__)
/// Streams `buf` once and returns the elapsed seconds (memcpy into a small
/// sink so the reads cannot be optimised away).
double time_stream(const std::vector<char>& buf) {
  char sink[64];
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i + sizeof sink <= buf.size(); i += 4096) {
    std::memcpy(sink, buf.data() + i, sizeof sink);
    // Data-dependence on the sink keeps the loop live.
    if (sink[0] == 0x7f) {
      buf.size();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Saves/restores the caller's affinity around a pinned probe.
struct AffinityGuard {
  cpu_set_t saved;
  bool valid;
  AffinityGuard() {
    valid =
        pthread_getaffinity_np(pthread_self(), sizeof saved, &saved) == 0;
  }
  ~AffinityGuard() {
    if (valid) {
      pthread_setaffinity_np(pthread_self(), sizeof saved, &saved);
    }
  }
};
#endif

}  // namespace

double measure_numa_bandwidth_ratio(const HostTopology& topo,
                                    std::size_t probe_bytes) {
  if (topo.domains.size() < 2 || topo.domains[0].cpus.empty() ||
      topo.domains[1].cpus.empty()) {
    return 1.0;
  }
#if defined(__linux__)
  AffinityGuard guard;
  // First-touch the buffer from domain 0, then stream it from a domain-0
  // CPU (local) and a domain-1 CPU (remote). The ratio of the two times is
  // the penalty factor for cross-domain exchange traffic.
  if (!pin_current_thread(topo.domains[0].cpus.front())) {
    return 1.0;
  }
  std::vector<char> buf(probe_bytes, 1);
  // Warm + local pass.
  time_stream(buf);
  const double local_s = time_stream(buf);
  if (!pin_current_thread(topo.domains[1].cpus.front())) {
    return 1.0;
  }
  const double remote_s = time_stream(buf);
  if (local_s <= 0 || remote_s <= 0) {
    return 1.0;
  }
  return std::max(1.0, remote_s / local_s);
#else
  (void)probe_bytes;
  return 1.0;
#endif
}

}  // namespace qsv
