// Gate application kernels, templated over the amplitude storage layout.
//
// All gate semantics live here, in exactly one place: the single-address-
// space StateVector calls apply_gate_slice with rank_bits = 0 and
// local_qubits = n; the distributed engine calls the same function on each
// rank's slice (rank_bits = rank id) for local gates, and the
// combine_* kernels after an exchange for distributed gates.
//
// Index convention: global amplitude index = (rank_bits << local_qubits) |
// local index; bit q of the global index is the basis value of qubit q.
//
// Hot dense kernels (matrix1/matrix2/swap/phase/rz) are layered: when the
// slice type exposes raw contiguous storage (sv/simd/simd.hpp span
// concepts), they dispatch through the runtime-selected SIMD backend table;
// the templated get/set loops below remain as the generic fallback for
// slice types without span access. Backends are bit-identical, so the
// routing never changes results (docs/KERNELS.md).
#pragma once

#include <cmath>
#include <numbers>
#include <utility>

#include "circuit/gate.hpp"
#include "circuit/locality.hpp"
#include "circuit/matrix.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "sv/simd/simd.hpp"
#include "sv/storage.hpp"

namespace qsv::kern {

/// Splits a control-qubit list into a local-bit mask and a high-bit mask
/// (bits numbered from 0 within the rank id).
struct SplitMask {
  amp_index local = 0;
  amp_index high = 0;
};

[[nodiscard]] inline SplitMask split_controls(const std::vector<qubit_t>& controls,
                                              int local_qubits) {
  SplitMask m;
  for (qubit_t c : controls) {
    if (c < local_qubits) {
      m.local = bits::set_bit(m.local, c);
    } else {
      m.high = bits::set_bit(m.high, c - local_qubits);
    }
  }
  return m;
}

/// Applies a 2x2 matrix to a local target with an optional local control
/// mask. High controls must already be satisfied (caller's responsibility).
template <class S>
void apply_matrix1(S& s, int target, const Mat2& u, amp_index local_ctrl_mask) {
  if constexpr (simd::SoaSpanAccess<S>) {
    simd::ops().matrix1_soa(simd::soa_span(s), target, u, local_ctrl_mask);
    return;
  } else if constexpr (simd::AosSpanAccess<S>) {
    simd::ops().matrix1_aos(simd::aos_span(s), target, u, local_ctrl_mask);
    return;
  }
  const amp_index pairs = s.size() / 2;
  const cplx u00 = u.m[0][0];
  const cplx u01 = u.m[0][1];
  const cplx u10 = u.m[1][0];
  const cplx u11 = u.m[1][1];

  if (local_ctrl_mask == 0) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::int64_t k = 0; k < static_cast<std::int64_t>(pairs); ++k) {
      const amp_index i0 = bits::insert_zero_bit(static_cast<amp_index>(k), target);
      const amp_index i1 = bits::set_bit(i0, target);
      const cplx a0 = s.get(i0);
      const cplx a1 = s.get(i1);
      s.set(i0, u00 * a0 + u01 * a1);
      s.set(i1, u10 * a0 + u11 * a1);
    }
    return;
  }

#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(pairs); ++k) {
    const amp_index i0 = bits::insert_zero_bit(static_cast<amp_index>(k), target);
    if (!bits::all_set(i0, local_ctrl_mask)) {
      continue;
    }
    const amp_index i1 = bits::set_bit(i0, target);
    const cplx a0 = s.get(i0);
    const cplx a1 = s.get(i1);
    s.set(i0, u00 * a0 + u01 * a1);
    s.set(i1, u10 * a0 + u11 * a1);
  }
}

/// Applies a 4x4 matrix to two local targets (a = low subspace bit, b =
/// high subspace bit) with an optional local control mask.
template <class S>
void apply_matrix2(S& s, int a, int b, const Mat4& u,
                   amp_index local_ctrl_mask) {
  QSV_REQUIRE(a != b, "unitary2 targets must differ");
  if constexpr (simd::SoaSpanAccess<S>) {
    simd::ops().matrix2_soa(simd::soa_span(s), a, b, u, local_ctrl_mask);
    return;
  } else if constexpr (simd::AosSpanAccess<S>) {
    simd::ops().matrix2_aos(simd::aos_span(s), a, b, u, local_ctrl_mask);
    return;
  }
  const int lo = a < b ? a : b;
  const int hi = a < b ? b : a;
  const amp_index quads = s.size() / 4;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(quads); ++k) {
    const amp_index base =
        bits::insert_two_zero_bits(static_cast<amp_index>(k), lo, hi);
    if (!bits::all_set(base, local_ctrl_mask)) {
      continue;
    }
    // Subspace index order follows (bit b, bit a).
    amp_index idx[4];
    for (int sub = 0; sub < 4; ++sub) {
      amp_index i = base;
      if (sub & 1) {
        i = bits::set_bit(i, a);
      }
      if (sub & 2) {
        i = bits::set_bit(i, b);
      }
      idx[sub] = i;
    }
    cplx in[4];
    for (int sub = 0; sub < 4; ++sub) {
      in[sub] = s.get(idx[sub]);
    }
    for (int row = 0; row < 4; ++row) {
      cplx acc = 0;
      for (int col = 0; col < 4; ++col) {
        acc += u.m[row][col] * in[col];
      }
      s.set(idx[row], acc);
    }
  }
}

/// SWAP of two local qubits.
template <class S>
void apply_swap_local(S& s, int a, int b) {
  QSV_REQUIRE(a != b, "swap targets must differ");
  if constexpr (simd::SoaSpanAccess<S>) {
    simd::ops().swap_soa(simd::soa_span(s), a, b);
    return;
  } else if constexpr (simd::AosSpanAccess<S>) {
    simd::ops().swap_aos(simd::aos_span(s), a, b);
    return;
  }
  const int lo = a < b ? a : b;
  const int hi = a < b ? b : a;
  const amp_index quads = s.size() / 4;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(quads); ++k) {
    // Enumerate indices with bit lo = 1, bit hi = 0; exchange with the
    // partner that has lo = 0, hi = 1.
    amp_index i = bits::insert_two_zero_bits(static_cast<amp_index>(k), lo, hi);
    i = bits::set_bit(i, lo);
    const amp_index j = bits::set_bit(bits::clear_bit(i, lo), hi);
    const cplx ai = s.get(i);
    s.set(i, s.get(j));
    s.set(j, ai);
  }
}

/// Multiplies every amplitude whose global index has all bits of `mask` set
/// by `factor`. `mask` may include high bits; the caller passes the global
/// mask and the slice's rank_bits.
template <class S>
void apply_phase_mask(S& s, amp_index global_mask, cplx factor,
                      int local_qubits, amp_index rank_bits) {
  const amp_index high_mask = global_mask >> local_qubits;
  if (!bits::all_set(rank_bits, high_mask)) {
    return;  // this slice fails the high-bit part of the mask
  }
  const amp_index local_mask =
      global_mask & ((amp_index{1} << local_qubits) - 1);
  if constexpr (simd::SoaSpanAccess<S>) {
    simd::ops().phase_soa(simd::soa_span(s), local_mask, factor);
    return;
  } else if constexpr (simd::AosSpanAccess<S>) {
    simd::ops().phase_aos(simd::aos_span(s), local_mask, factor);
    return;
  }
  const amp_index n = s.size();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (bits::all_set(static_cast<amp_index>(i), local_mask)) {
      s.set(i, s.get(i) * factor);
    }
  }
}

/// Rz: phases both halves of the target (no control support needed beyond
/// the mask, which gates the whole update).
template <class S>
void apply_rz(S& s, int target_global, real_t theta, amp_index ctrl_global,
              int local_qubits, amp_index rank_bits) {
  const cplx f0 = std::polar<real_t>(1, -theta / 2);
  const cplx f1 = std::polar<real_t>(1, theta / 2);
  const amp_index high_ctrl = ctrl_global >> local_qubits;
  if (!bits::all_set(rank_bits, high_ctrl)) {
    return;
  }
  const amp_index local_ctrl =
      ctrl_global & ((amp_index{1} << local_qubits) - 1);
  const amp_index n = s.size();

  // The target may itself be a high bit: the whole slice is then one half
  // and the update degenerates to a mask-gated uniform phase.
  if (target_global >= local_qubits) {
    const cplx f =
        bits::bit(rank_bits, target_global - local_qubits) ? f1 : f0;
    if constexpr (simd::SoaSpanAccess<S>) {
      simd::ops().phase_soa(simd::soa_span(s), local_ctrl, f);
      return;
    } else if constexpr (simd::AosSpanAccess<S>) {
      simd::ops().phase_aos(simd::aos_span(s), local_ctrl, f);
      return;
    }
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      if (bits::all_set(static_cast<amp_index>(i), local_ctrl)) {
        s.set(i, s.get(i) * f);
      }
    }
    return;
  }

  if constexpr (simd::SoaSpanAccess<S>) {
    simd::ops().rz_soa(simd::soa_span(s), target_global, f0, f1, local_ctrl);
    return;
  } else if constexpr (simd::AosSpanAccess<S>) {
    simd::ops().rz_aos(simd::aos_span(s), target_global, f0, f1, local_ctrl);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (!bits::all_set(static_cast<amp_index>(i), local_ctrl)) {
      continue;
    }
    const cplx f = bits::bit(static_cast<amp_index>(i), target_global) ? f1 : f0;
    s.set(i, s.get(i) * f);
  }
}

/// QuEST-style fused controlled-phase layer: for amplitudes with the target
/// bit set, the phase is the sum of the angles of every control bit that is
/// also set. One pass over the slice regardless of the control count.
template <class S>
void apply_fused_phase(S& s, const Gate& g, int local_qubits,
                       amp_index rank_bits) {
  const qubit_t t = g.targets[0];

  // Phase contributed by high controls is constant across the slice.
  real_t high_phase = 0;
  amp_index local_ctrl_bits = 0;
  std::vector<std::pair<int, real_t>> local_ctrls;
  for (std::size_t ci = 0; ci < g.controls.size(); ++ci) {
    const qubit_t c = g.controls[ci];
    if (c >= local_qubits) {
      if (bits::bit(rank_bits, c - local_qubits)) {
        high_phase += g.params[ci];
      }
    } else {
      local_ctrls.emplace_back(c, g.params[ci]);
      local_ctrl_bits = bits::set_bit(local_ctrl_bits, c);
    }
  }

  const amp_index n = s.size();
  const bool target_high = t >= local_qubits;
  if (target_high && bits::bit(rank_bits, t - local_qubits) == 0) {
    return;  // target bit is 0 across the whole slice: identity
  }

#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t ii = 0; ii < static_cast<std::int64_t>(n); ++ii) {
    const amp_index i = static_cast<amp_index>(ii);
    if (!target_high && bits::bit(i, t) == 0) {
      continue;
    }
    real_t phase = high_phase;
    for (const auto& [c, theta] : local_ctrls) {
      if (bits::bit(i, c)) {
        phase += theta;
      }
    }
    if (phase != 0) {
      s.set(i, s.get(i) * std::polar<real_t>(1, phase));
    }
  }
}

/// Applies any gate that is not distributed for this decomposition.
/// Handles local-memory pair updates, all diagonal gates (including those
/// whose operands live in the rank bits) and local SWAPs.
template <class S>
void apply_gate_slice(S& s, const Gate& g, int local_qubits,
                      amp_index rank_bits) {
  QSV_REQUIRE(classify_gate(g, local_qubits) != GateLocality::kDistributed,
              "apply_gate_slice cannot apply a distributed gate: " + g.str());

  switch (g.kind) {
    case GateKind::kSwap:
      apply_swap_local(s, g.targets[0], g.targets[1]);
      return;

    case GateKind::kUnitary2: {
      const SplitMask cm = split_controls(g.controls, local_qubits);
      if (!bits::all_set(rank_bits, cm.high)) {
        return;
      }
      apply_matrix2(s, g.targets[0], g.targets[1], gate_matrix4(g), cm.local);
      return;
    }

    case GateKind::kRz: {
      amp_index ctrl = 0;
      for (qubit_t c : g.controls) {
        ctrl = bits::set_bit(ctrl, c);
      }
      apply_rz(s, g.targets[0], g.params[0], ctrl, local_qubits, rank_bits);
      return;
    }

    case GateKind::kFusedPhase:
      apply_fused_phase(s, g, local_qubits, rank_bits);
      return;

    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kT:
    case GateKind::kPhase:
    case GateKind::kCz:
    case GateKind::kCPhase: {
      // Single multiplicative factor on amplitudes where target and all
      // control bits are 1.
      cplx factor;
      switch (g.kind) {
        case GateKind::kZ:
        case GateKind::kCz:
          factor = -1;
          break;
        case GateKind::kS:
          factor = cplx{0, 1};
          break;
        case GateKind::kT:
          factor = std::polar<real_t>(1, std::numbers::pi_v<real_t> / 4);
          break;
        default:
          factor = std::polar<real_t>(1, g.params[0]);
          break;
      }
      amp_index mask = 0;
      for (qubit_t t : g.targets) {
        mask = bits::set_bit(mask, t);
      }
      for (qubit_t c : g.controls) {
        mask = bits::set_bit(mask, c);
      }
      apply_phase_mask(s, mask, factor, local_qubits, rank_bits);
      return;
    }

    default: {
      // Non-diagonal single-target gate: target must be local; high controls
      // decide participation at slice level.
      const SplitMask cm = split_controls(g.controls, local_qubits);
      if (!bits::all_set(rank_bits, cm.high)) {
        return;
      }
      apply_matrix1(s, g.targets[0], gate_matrix2(g), cm.local);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Distributed combine kernels (used by the distributed engine after the
// pairwise exchange; `theirs` is the peer's full slice).
// ---------------------------------------------------------------------------

/// Distributed single-target gate: this rank holds the `my_row` components
/// (my_row = my rank's bit of the target). After receiving the peer slice:
/// new[i] = u[my_row][my_row]*mine[i] + u[my_row][1-my_row]*theirs[i].
/// `local_ctrl_mask` gates per-amplitude updates (high controls are decided
/// before the exchange).
///
/// The _range forms update amplitudes [first, first + count) only — the
/// overlapped exchange pipeline applies them chunk by chunk as payloads
/// arrive. Each amplitude's update is independent and written by exactly
/// the same expression as the full-slice form (which delegates here), so
/// region-at-a-time application is bitwise identical to one whole pass.
template <class S>
void combine_matrix1_range(S& mine, const S& theirs, int my_row, const Mat2& u,
                           amp_index local_ctrl_mask, amp_index first,
                           amp_index count) {
  QSV_REQUIRE(mine.size() == theirs.size(), "slice size mismatch");
  QSV_REQUIRE(first + count <= mine.size(), "combine region out of range");
  const cplx diag = u.m[my_row][my_row];
  const cplx off = u.m[my_row][1 - my_row];
  const std::int64_t lo = static_cast<std::int64_t>(first);
  const std::int64_t hi = static_cast<std::int64_t>(first + count);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = lo; i < hi; ++i) {
    if (!bits::all_set(static_cast<amp_index>(i), local_ctrl_mask)) {
      continue;
    }
    mine.set(i, diag * mine.get(i) + off * theirs.get(i));
  }
}

template <class S>
void combine_matrix1(S& mine, const S& theirs, int my_row, const Mat2& u,
                     amp_index local_ctrl_mask) {
  combine_matrix1_range(mine, theirs, my_row, u, local_ctrl_mask, 0,
                        mine.size());
}

/// Distributed SWAP with one local target `a` and the distributed target in
/// the rank bits: amplitudes whose local bit `a` differs from this rank's
/// bit of the distributed target are replaced from the peer slice.
/// Range form for the overlapped pipeline. An amplitude i in the region
/// reads theirs[flip_bit(i, a)], which may sit outside [first, first+count):
/// callers must only pass regions closed under flipping bit `a` — i.e.
/// aligned to (and a multiple of) 2^(a+1) amplitudes, which the frontier
/// driver guarantees (sv/sweep.hpp).
template <class S>
void combine_swap_one_high_range(S& mine, const S& theirs, int a,
                                 int my_high_bit, amp_index first,
                                 amp_index count) {
  QSV_REQUIRE(mine.size() == theirs.size(), "slice size mismatch");
  QSV_REQUIRE(first + count <= mine.size(), "combine region out of range");
  const std::int64_t lo = static_cast<std::int64_t>(first);
  const std::int64_t hi = static_cast<std::int64_t>(first + count);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t ii = lo; ii < hi; ++ii) {
    const amp_index i = static_cast<amp_index>(ii);
    if (bits::bit(i, a) != my_high_bit) {
      mine.set(i, theirs.get(bits::flip_bit(i, a)));
    }
  }
}

template <class S>
void combine_swap_one_high(S& mine, const S& theirs, int a, int my_high_bit) {
  combine_swap_one_high_range(mine, theirs, a, my_high_bit, 0, mine.size());
}

/// Distributed SWAP with both targets in the rank bits: the slices are
/// exchanged wholesale (pure relabelling).
template <class S>
void combine_swap_two_high_range(S& mine, const S& theirs, amp_index first,
                                 amp_index count) {
  QSV_REQUIRE(mine.size() == theirs.size(), "slice size mismatch");
  QSV_REQUIRE(first + count <= mine.size(), "combine region out of range");
  const std::int64_t lo = static_cast<std::int64_t>(first);
  const std::int64_t hi = static_cast<std::int64_t>(first + count);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = lo; i < hi; ++i) {
    mine.set(i, theirs.get(i));
  }
}

template <class S>
void combine_swap_two_high(S& mine, const S& theirs) {
  combine_swap_two_high_range(mine, theirs, 0, mine.size());
}

// ---------------------------------------------------------------------------
// Half-exchange helpers (the paper's future-work optimisation): only the
// half of the slice whose bit `a` equals `value` is serialised.
// ---------------------------------------------------------------------------

/// Number of bytes a half-exchange payload occupies.
[[nodiscard]] inline std::size_t half_payload_bytes(amp_index slice_size) {
  return (slice_size / 2) * kBytesPerAmp;
}

/// Packs amplitudes whose bit `a` == `value`, in increasing index order,
/// as interleaved (re, im) doubles.
template <class S>
void gather_half(const S& src, int a, int value, std::byte* out) {
  const amp_index halves = src.size() / 2;
  real_t* o = reinterpret_cast<real_t*>(out);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t kk = 0; kk < static_cast<std::int64_t>(halves); ++kk) {
    const amp_index k = static_cast<amp_index>(kk);
    amp_index i = bits::insert_zero_bit(k, a);
    if (value) {
      i = bits::set_bit(i, a);
    }
    const cplx v = src.get(i);
    o[2 * k] = v.real();
    o[2 * k + 1] = v.imag();
  }
}

/// Inverse of gather_half: writes the packed stream into amplitudes whose
/// bit `a` == `value`, in increasing index order.
/// Range form: scatters packed amplitudes [first, first + count) of the
/// stream (`in` still points at the stream's base). The overlapped pipeline
/// calls this per arrived chunk; packed index k maps to one amplitude
/// independently of every other k, so chunk-at-a-time scatter is bitwise
/// identical to one whole pass (which delegates here).
template <class S>
void scatter_half_range(S& dst, int a, int value, const std::byte* in,
                        amp_index first, amp_index count) {
  QSV_REQUIRE(first + count <= dst.size() / 2,
              "scatter region out of range");
  const real_t* p = reinterpret_cast<const real_t*>(in);
  const std::int64_t lo = static_cast<std::int64_t>(first);
  const std::int64_t hi = static_cast<std::int64_t>(first + count);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t kk = lo; kk < hi; ++kk) {
    const amp_index k = static_cast<amp_index>(kk);
    amp_index i = bits::insert_zero_bit(k, a);
    if (value) {
      i = bits::set_bit(i, a);
    }
    dst.set(i, cplx{p[2 * k], p[2 * k + 1]});
  }
}

template <class S>
void scatter_half(S& dst, int a, int value, const std::byte* in) {
  scatter_half_range(dst, a, value, in, 0, dst.size() / 2);
}

}  // namespace qsv::kern
