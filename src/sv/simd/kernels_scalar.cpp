// Portable scalar reference backend.
//
// This file is the arithmetic contract: every vector backend must produce
// bit-identical amplitudes to these loops. The complex operation order
// mirrors std::complex exactly —
//   a * b = (a.re*b.re - a.im*b.im,  a.re*b.im + a.im*b.re)
// with the left operand's components first — and the whole file is compiled
// with -ffp-contract=off so no multiply-add contraction can change rounding
// (see src/sv/CMakeLists.txt; the vector backends use no FMA either).
//
// Loops over the SoA layout are written as (block, offset) nests over the
// pair stride so the compiler can auto-vectorise the contiguous inner loop
// even in this backend — the raw-span fast path replaces the get/set
// indirection the templated kernels fall back to.
#include "common/bits.hpp"
#include "common/error.hpp"
#include "sv/simd/backends.hpp"

namespace qsv::simd {
namespace {

using std::int64_t;

// ---------------------------------------------------------------------------
// SoA (split re/im arrays)
// ---------------------------------------------------------------------------

void matrix1_soa(const SoaSpan& s, int target, const Mat2& u,
                 amp_index ctrl) {
  real_t* const re = s.re;
  real_t* const im = s.im;
  const real_t u00r = u.m[0][0].real(), u00i = u.m[0][0].imag();
  const real_t u01r = u.m[0][1].real(), u01i = u.m[0][1].imag();
  const real_t u10r = u.m[1][0].real(), u10i = u.m[1][0].imag();
  const real_t u11r = u.m[1][1].real(), u11i = u.m[1][1].imag();
  const int64_t stride = int64_t{1} << target;

  if (ctrl == 0) {
    const int64_t blocks = static_cast<int64_t>(s.n) / (2 * stride);
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (int64_t blk = 0; blk < blocks; ++blk) {
      for (int64_t off = 0; off < stride; ++off) {
        const int64_t i0 = blk * 2 * stride + off;
        const int64_t i1 = i0 + stride;
        const real_t a0r = re[i0], a0i = im[i0];
        const real_t a1r = re[i1], a1i = im[i1];
        re[i0] = (u00r * a0r - u00i * a0i) + (u01r * a1r - u01i * a1i);
        im[i0] = (u00r * a0i + u00i * a0r) + (u01r * a1i + u01i * a1r);
        re[i1] = (u10r * a0r - u10i * a0i) + (u11r * a1r - u11i * a1i);
        im[i1] = (u10r * a0i + u10i * a0r) + (u11r * a1i + u11i * a1r);
      }
    }
    return;
  }

  const int64_t pairs = static_cast<int64_t>(s.n) / 2;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t k = 0; k < pairs; ++k) {
    const amp_index i0 =
        bits::insert_zero_bit(static_cast<amp_index>(k), target);
    if (!bits::all_set(i0, ctrl)) {
      continue;
    }
    const amp_index i1 = bits::set_bit(i0, target);
    const real_t a0r = re[i0], a0i = im[i0];
    const real_t a1r = re[i1], a1i = im[i1];
    re[i0] = (u00r * a0r - u00i * a0i) + (u01r * a1r - u01i * a1i);
    im[i0] = (u00r * a0i + u00i * a0r) + (u01r * a1i + u01i * a1r);
    re[i1] = (u10r * a0r - u10i * a0i) + (u11r * a1r - u11i * a1i);
    im[i1] = (u10r * a0i + u10i * a0r) + (u11r * a1i + u11i * a1r);
  }
}

void matrix2_soa(const SoaSpan& s, int a, int b, const Mat4& u,
                 amp_index ctrl) {
  real_t* const re = s.re;
  real_t* const im = s.im;
  const int lo = a < b ? a : b;
  const int hi = a < b ? b : a;
  const int64_t quads = static_cast<int64_t>(s.n) / 4;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t k = 0; k < quads; ++k) {
    const amp_index base =
        bits::insert_two_zero_bits(static_cast<amp_index>(k), lo, hi);
    if (!bits::all_set(base, ctrl)) {
      continue;
    }
    // Subspace index order follows (bit b, bit a).
    amp_index idx[4];
    for (int sub = 0; sub < 4; ++sub) {
      amp_index i = base;
      if (sub & 1) {
        i = bits::set_bit(i, a);
      }
      if (sub & 2) {
        i = bits::set_bit(i, b);
      }
      idx[sub] = i;
    }
    real_t inr[4], ini[4];
    for (int sub = 0; sub < 4; ++sub) {
      inr[sub] = re[idx[sub]];
      ini[sub] = im[idx[sub]];
    }
    for (int row = 0; row < 4; ++row) {
      real_t accr = 0, acci = 0;
      for (int col = 0; col < 4; ++col) {
        const real_t ur = u.m[row][col].real();
        const real_t ui = u.m[row][col].imag();
        accr = accr + (ur * inr[col] - ui * ini[col]);
        acci = acci + (ur * ini[col] + ui * inr[col]);
      }
      re[idx[row]] = accr;
      im[idx[row]] = acci;
    }
  }
}

void swap_soa(const SoaSpan& s, int a, int b) {
  real_t* const re = s.re;
  real_t* const im = s.im;
  const int lo = a < b ? a : b;
  const int hi = a < b ? b : a;
  const int64_t quads = static_cast<int64_t>(s.n) / 4;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t k = 0; k < quads; ++k) {
    amp_index i =
        bits::insert_two_zero_bits(static_cast<amp_index>(k), lo, hi);
    i = bits::set_bit(i, lo);
    const amp_index j = bits::set_bit(bits::clear_bit(i, lo), hi);
    const real_t tr = re[i], ti = im[i];
    re[i] = re[j];
    im[i] = im[j];
    re[j] = tr;
    im[j] = ti;
  }
}

void phase_soa(const SoaSpan& s, amp_index mask, cplx factor) {
  real_t* const re = s.re;
  real_t* const im = s.im;
  const real_t fr = factor.real(), fi = factor.imag();
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t i = 0; i < n; ++i) {
    if (bits::all_set(static_cast<amp_index>(i), mask)) {
      const real_t vr = re[i], vi = im[i];
      re[i] = vr * fr - vi * fi;
      im[i] = vr * fi + vi * fr;
    }
  }
}

void rz_soa(const SoaSpan& s, int target, cplx f0, cplx f1, amp_index ctrl) {
  real_t* const re = s.re;
  real_t* const im = s.im;
  const real_t f0r = f0.real(), f0i = f0.imag();
  const real_t f1r = f1.real(), f1i = f1.imag();
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t i = 0; i < n; ++i) {
    if (!bits::all_set(static_cast<amp_index>(i), ctrl)) {
      continue;
    }
    const bool one = bits::bit(static_cast<amp_index>(i), target) != 0;
    const real_t fr = one ? f1r : f0r;
    const real_t fi = one ? f1i : f0i;
    const real_t vr = re[i], vi = im[i];
    re[i] = vr * fr - vi * fi;
    im[i] = vr * fi + vi * fr;
  }
}

// ---------------------------------------------------------------------------
// AoS (interleaved std::complex array) — plain std::complex arithmetic,
// which is definitionally the reference order.
// ---------------------------------------------------------------------------

void matrix1_aos(const AosSpan& s, int target, const Mat2& u,
                 amp_index ctrl) {
  cplx* const amp = s.amp;
  const cplx u00 = u.m[0][0], u01 = u.m[0][1];
  const cplx u10 = u.m[1][0], u11 = u.m[1][1];
  const int64_t stride = int64_t{1} << target;

  if (ctrl == 0) {
    const int64_t blocks = static_cast<int64_t>(s.n) / (2 * stride);
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (int64_t blk = 0; blk < blocks; ++blk) {
      for (int64_t off = 0; off < stride; ++off) {
        const int64_t i0 = blk * 2 * stride + off;
        const int64_t i1 = i0 + stride;
        const cplx a0 = amp[i0];
        const cplx a1 = amp[i1];
        amp[i0] = u00 * a0 + u01 * a1;
        amp[i1] = u10 * a0 + u11 * a1;
      }
    }
    return;
  }

  const int64_t pairs = static_cast<int64_t>(s.n) / 2;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t k = 0; k < pairs; ++k) {
    const amp_index i0 =
        bits::insert_zero_bit(static_cast<amp_index>(k), target);
    if (!bits::all_set(i0, ctrl)) {
      continue;
    }
    const amp_index i1 = bits::set_bit(i0, target);
    const cplx a0 = amp[i0];
    const cplx a1 = amp[i1];
    amp[i0] = u00 * a0 + u01 * a1;
    amp[i1] = u10 * a0 + u11 * a1;
  }
}

void matrix2_aos(const AosSpan& s, int a, int b, const Mat4& u,
                 amp_index ctrl) {
  cplx* const amp = s.amp;
  const int lo = a < b ? a : b;
  const int hi = a < b ? b : a;
  const int64_t quads = static_cast<int64_t>(s.n) / 4;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t k = 0; k < quads; ++k) {
    const amp_index base =
        bits::insert_two_zero_bits(static_cast<amp_index>(k), lo, hi);
    if (!bits::all_set(base, ctrl)) {
      continue;
    }
    amp_index idx[4];
    for (int sub = 0; sub < 4; ++sub) {
      amp_index i = base;
      if (sub & 1) {
        i = bits::set_bit(i, a);
      }
      if (sub & 2) {
        i = bits::set_bit(i, b);
      }
      idx[sub] = i;
    }
    cplx in[4];
    for (int sub = 0; sub < 4; ++sub) {
      in[sub] = amp[idx[sub]];
    }
    for (int row = 0; row < 4; ++row) {
      cplx acc = 0;
      for (int col = 0; col < 4; ++col) {
        acc += u.m[row][col] * in[col];
      }
      amp[idx[row]] = acc;
    }
  }
}

void swap_aos(const AosSpan& s, int a, int b) {
  cplx* const amp = s.amp;
  const int lo = a < b ? a : b;
  const int hi = a < b ? b : a;
  const int64_t quads = static_cast<int64_t>(s.n) / 4;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t k = 0; k < quads; ++k) {
    amp_index i =
        bits::insert_two_zero_bits(static_cast<amp_index>(k), lo, hi);
    i = bits::set_bit(i, lo);
    const amp_index j = bits::set_bit(bits::clear_bit(i, lo), hi);
    const cplx t = amp[i];
    amp[i] = amp[j];
    amp[j] = t;
  }
}

void phase_aos(const AosSpan& s, amp_index mask, cplx factor) {
  cplx* const amp = s.amp;
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t i = 0; i < n; ++i) {
    if (bits::all_set(static_cast<amp_index>(i), mask)) {
      amp[i] = amp[i] * factor;
    }
  }
}

void rz_aos(const AosSpan& s, int target, cplx f0, cplx f1, amp_index ctrl) {
  cplx* const amp = s.amp;
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t i = 0; i < n; ++i) {
    if (!bits::all_set(static_cast<amp_index>(i), ctrl)) {
      continue;
    }
    const cplx f =
        bits::bit(static_cast<amp_index>(i), target) ? f1 : f0;
    amp[i] = amp[i] * f;
  }
}

constexpr KernelOps kScalarOps = {
    "scalar",      matrix1_soa, matrix1_aos, matrix2_soa, matrix2_aos,
    swap_soa,      swap_aos,    phase_soa,   phase_aos,   rz_soa,
    rz_aos,
};

}  // namespace

const KernelOps& scalar_ops() { return kScalarOps; }

}  // namespace qsv::simd
