// AVX-512 backend: 512-bit split re/im lanes for the kernels that dominate
// dense local layers (matrix1, phase, rz). The rarer dense kernels
// (matrix2, swap) compose the AVX2 table's entries, and the AoS layout
// forwards to scalar — a worked example of the partial-backend composition
// rule in docs/KERNELS.md.
//
// Compiled with -mavx512f -ffp-contract=off; no FMA (bit-identity contract,
// see kernels_scalar.cpp). Only the table getter is exported.
#include <immintrin.h>

#include "common/bits.hpp"
#include "sv/simd/backends.hpp"

namespace qsv::simd {
namespace {

using std::int64_t;
using v8d = __m512d;

struct BMat2 {
  v8d r00, i00, r01, i01, r10, i10, r11, i11;
};

BMat2 broadcast2(const Mat2& u) {
  return {_mm512_set1_pd(u.m[0][0].real()), _mm512_set1_pd(u.m[0][0].imag()),
          _mm512_set1_pd(u.m[0][1].real()), _mm512_set1_pd(u.m[0][1].imag()),
          _mm512_set1_pd(u.m[1][0].real()), _mm512_set1_pd(u.m[1][0].imag()),
          _mm512_set1_pd(u.m[1][1].real()), _mm512_set1_pd(u.m[1][1].imag())};
}

inline void mat2_lanes(const BMat2& u, v8d a0r, v8d a0i, v8d a1r, v8d a1i,
                       v8d& n0r, v8d& n0i, v8d& n1r, v8d& n1i) {
  n0r = _mm512_add_pd(
      _mm512_sub_pd(_mm512_mul_pd(u.r00, a0r), _mm512_mul_pd(u.i00, a0i)),
      _mm512_sub_pd(_mm512_mul_pd(u.r01, a1r), _mm512_mul_pd(u.i01, a1i)));
  n0i = _mm512_add_pd(
      _mm512_add_pd(_mm512_mul_pd(u.r00, a0i), _mm512_mul_pd(u.i00, a0r)),
      _mm512_add_pd(_mm512_mul_pd(u.r01, a1i), _mm512_mul_pd(u.i01, a1r)));
  n1r = _mm512_add_pd(
      _mm512_sub_pd(_mm512_mul_pd(u.r10, a0r), _mm512_mul_pd(u.i10, a0i)),
      _mm512_sub_pd(_mm512_mul_pd(u.r11, a1r), _mm512_mul_pd(u.i11, a1i)));
  n1i = _mm512_add_pd(
      _mm512_add_pd(_mm512_mul_pd(u.r10, a0i), _mm512_mul_pd(u.i10, a0r)),
      _mm512_add_pd(_mm512_mul_pd(u.r11, a1i), _mm512_mul_pd(u.i11, a1r)));
}

/// permutex2var index tables splitting a 16-amplitude group (vectors A, B)
/// into the pair halves for target bits 0..2, and merging them back.
/// fwd0/fwd1 gather the target=0 / target=1 halves; inv_lo/inv_hi scatter
/// (n0, n1) back into the A and B slots.
struct PairShuffle {
  __m512i fwd0, fwd1, inv_lo, inv_hi;
};

PairShuffle pair_shuffle(int target) {
  alignas(64) long long f0[8], f1[8], lo[8], hi[8];
  const long long stride = 1LL << target;
  for (long long k = 0; k < 8; ++k) {
    // Pair counter k within the group: member 0 at insert_zero(k, target),
    // member 1 one stride above. Values 0..7 select from A, 8..15 from B.
    const long long i0 =
        ((k & ~(stride - 1)) << 1) | (k & (stride - 1));
    f0[k] = i0;
    f1[k] = i0 + stride;
  }
  for (long long k = 0; k < 8; ++k) {
    // Amplitude slot f0[k] receives n0 lane k; slot f1[k] receives n1
    // lane k (n1 lanes are indices 8..15 of the (n0, n1) pair).
    long long* const dst = f0[k] < 8 ? lo : hi;
    dst[f0[k] & 7] = k;
    long long* const dst1 = f1[k] < 8 ? lo : hi;
    dst1[f1[k] & 7] = k + 8;
  }
  return {_mm512_load_si512(f0), _mm512_load_si512(f1),
          _mm512_load_si512(lo), _mm512_load_si512(hi)};
}

/// __mmask8 selecting lanes l (index base + l, base a multiple of 8) with
/// (l & lo3) == lo3.
__mmask8 low3_lane_mask(amp_index lo3) {
  __mmask8 m = 0;
  for (amp_index l = 0; l < 8; ++l) {
    if ((l & lo3) == lo3) {
      m = static_cast<__mmask8>(m | (1u << l));
    }
  }
  return m;
}

void matrix1_soa(const SoaSpan& s, int target, const Mat2& u,
                 amp_index ctrl) {
  if (ctrl != 0 || s.n < 16) {
    scalar_ops().matrix1_soa(s, target, u, ctrl);
    return;
  }
  real_t* const re = s.re;
  real_t* const im = s.im;
  const BMat2 b = broadcast2(u);

  if (target >= 3) {
    const int64_t stride = int64_t{1} << target;
    const int64_t blocks = static_cast<int64_t>(s.n) / (2 * stride);
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (int64_t blk = 0; blk < blocks; ++blk) {
      for (int64_t off = 0; off < stride; off += 8) {
        const int64_t i0 = blk * 2 * stride + off;
        const int64_t i1 = i0 + stride;
        const v8d a0r = _mm512_loadu_pd(re + i0);
        const v8d a0i = _mm512_loadu_pd(im + i0);
        const v8d a1r = _mm512_loadu_pd(re + i1);
        const v8d a1i = _mm512_loadu_pd(im + i1);
        v8d n0r, n0i, n1r, n1i;
        mat2_lanes(b, a0r, a0i, a1r, a1i, n0r, n0i, n1r, n1i);
        _mm512_storeu_pd(re + i0, n0r);
        _mm512_storeu_pd(im + i0, n0i);
        _mm512_storeu_pd(re + i1, n1r);
        _mm512_storeu_pd(im + i1, n1i);
      }
    }
    return;
  }

  // target 0..2: split each 16-amplitude group into pair halves with
  // permutex2var (pairs are independent; relabelling lanes is free).
  const PairShuffle sh = pair_shuffle(target);
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t base = 0; base < n; base += 16) {
    const v8d Ar = _mm512_loadu_pd(re + base);
    const v8d Br = _mm512_loadu_pd(re + base + 8);
    const v8d Ai = _mm512_loadu_pd(im + base);
    const v8d Bi = _mm512_loadu_pd(im + base + 8);
    const v8d a0r = _mm512_permutex2var_pd(Ar, sh.fwd0, Br);
    const v8d a1r = _mm512_permutex2var_pd(Ar, sh.fwd1, Br);
    const v8d a0i = _mm512_permutex2var_pd(Ai, sh.fwd0, Bi);
    const v8d a1i = _mm512_permutex2var_pd(Ai, sh.fwd1, Bi);
    v8d n0r, n0i, n1r, n1i;
    mat2_lanes(b, a0r, a0i, a1r, a1i, n0r, n0i, n1r, n1i);
    _mm512_storeu_pd(re + base, _mm512_permutex2var_pd(n0r, sh.inv_lo, n1r));
    _mm512_storeu_pd(re + base + 8,
                     _mm512_permutex2var_pd(n0r, sh.inv_hi, n1r));
    _mm512_storeu_pd(im + base, _mm512_permutex2var_pd(n0i, sh.inv_lo, n1i));
    _mm512_storeu_pd(im + base + 8,
                     _mm512_permutex2var_pd(n0i, sh.inv_hi, n1i));
  }
}

void phase_soa(const SoaSpan& s, amp_index mask, cplx factor) {
  if (s.n < 8) {
    scalar_ops().phase_soa(s, mask, factor);
    return;
  }
  real_t* const re = s.re;
  real_t* const im = s.im;
  const __mmask8 lane = low3_lane_mask(mask & 7);
  const amp_index mask_hi = mask & ~amp_index{7};
  const v8d fr = _mm512_set1_pd(factor.real());
  const v8d fi = _mm512_set1_pd(factor.imag());
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t base = 0; base < n; base += 8) {
    if (!bits::all_set(static_cast<amp_index>(base), mask_hi)) {
      continue;
    }
    const v8d vr = _mm512_loadu_pd(re + base);
    const v8d vi = _mm512_loadu_pd(im + base);
    const v8d nr =
        _mm512_sub_pd(_mm512_mul_pd(vr, fr), _mm512_mul_pd(vi, fi));
    const v8d ni =
        _mm512_add_pd(_mm512_mul_pd(vr, fi), _mm512_mul_pd(vi, fr));
    _mm512_mask_storeu_pd(re + base, lane, nr);
    _mm512_mask_storeu_pd(im + base, lane, ni);
  }
}

void rz_soa(const SoaSpan& s, int target, cplx f0, cplx f1, amp_index ctrl) {
  if (s.n < 8) {
    scalar_ops().rz_soa(s, target, f0, f1, ctrl);
    return;
  }
  real_t* const re = s.re;
  real_t* const im = s.im;
  const __mmask8 ctrl_lane = low3_lane_mask(ctrl & 7);
  const amp_index ctrl_hi = ctrl & ~amp_index{7};
  const v8d f0r = _mm512_set1_pd(f0.real()), f0i = _mm512_set1_pd(f0.imag());
  const v8d f1r = _mm512_set1_pd(f1.real()), f1i = _mm512_set1_pd(f1.imag());

  v8d frv_fixed = f0r, fiv_fixed = f0i;
  const bool lane_target = target < 3;
  if (lane_target) {
    __mmask8 tmask = 0;
    for (int l = 0; l < 8; ++l) {
      if ((l >> target) & 1) {
        tmask = static_cast<__mmask8>(tmask | (1u << l));
      }
    }
    frv_fixed = _mm512_mask_blend_pd(tmask, f0r, f1r);
    fiv_fixed = _mm512_mask_blend_pd(tmask, f0i, f1i);
  }
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t base = 0; base < n; base += 8) {
    if (!bits::all_set(static_cast<amp_index>(base), ctrl_hi)) {
      continue;
    }
    v8d frv = frv_fixed, fiv = fiv_fixed;
    if (!lane_target) {
      const bool one =
          bits::bit(static_cast<amp_index>(base), target) != 0;
      frv = one ? f1r : f0r;
      fiv = one ? f1i : f0i;
    }
    const v8d vr = _mm512_loadu_pd(re + base);
    const v8d vi = _mm512_loadu_pd(im + base);
    const v8d nr =
        _mm512_sub_pd(_mm512_mul_pd(vr, frv), _mm512_mul_pd(vi, fiv));
    const v8d ni =
        _mm512_add_pd(_mm512_mul_pd(vr, fiv), _mm512_mul_pd(vi, frv));
    _mm512_mask_storeu_pd(re + base, ctrl_lane, nr);
    _mm512_mask_storeu_pd(im + base, ctrl_lane, ni);
  }
}

// Composed entries: matrix2/swap ride the AVX2 implementations, AoS rides
// scalar (see kernels_avx2.cpp for why split lanes skip AoS).
void matrix2_soa(const SoaSpan& s, int a, int b, const Mat4& u,
                 amp_index c) {
  avx2_ops().matrix2_soa(s, a, b, u, c);
}
void swap_soa(const SoaSpan& s, int a, int b) { avx2_ops().swap_soa(s, a, b); }
void matrix1_aos(const AosSpan& s, int t, const Mat2& u, amp_index c) {
  scalar_ops().matrix1_aos(s, t, u, c);
}
void matrix2_aos(const AosSpan& s, int a, int b, const Mat4& u,
                 amp_index c) {
  scalar_ops().matrix2_aos(s, a, b, u, c);
}
void swap_aos(const AosSpan& s, int a, int b) {
  scalar_ops().swap_aos(s, a, b);
}
void phase_aos(const AosSpan& s, amp_index m, cplx f) {
  scalar_ops().phase_aos(s, m, f);
}
void rz_aos(const AosSpan& s, int t, cplx f0, cplx f1, amp_index c) {
  scalar_ops().rz_aos(s, t, f0, f1, c);
}

constexpr KernelOps kAvx512Ops = {
    "avx512",    matrix1_soa, matrix1_aos, matrix2_soa, matrix2_aos,
    swap_soa,    swap_aos,    phase_soa,   phase_aos,   rz_soa,
    rz_aos,
};

}  // namespace

const KernelOps& avx512_ops() { return kAvx512Ops; }

}  // namespace qsv::simd
