// Internal: per-backend kernel-table getters, linked by dispatch.cpp.
// Availability macros (QSV_SIMD_HAVE_*) are defined by src/sv/CMakeLists.txt
// for backends whose ISA flags the compiler accepted on this architecture.
#pragma once

#include "sv/simd/simd.hpp"

namespace qsv::simd {

const KernelOps& scalar_ops();
#if QSV_SIMD_HAVE_AVX2
const KernelOps& avx2_ops();
#endif
#if QSV_SIMD_HAVE_AVX512
const KernelOps& avx512_ops();
#endif

}  // namespace qsv::simd
