// SIMD-dispatched span kernels for the hot dense gate paths.
//
// The gate kernels in sv/kernels.hpp are templated over a *slice* interface
// (get/set/size). When the slice also exposes raw contiguous storage — the
// SoA re()/im() arrays or the AoS data() array — the dense kernels route
// through this layer instead: a table of function pointers (`KernelOps`)
// whose entries are implemented once per backend (portable scalar, AVX2,
// AVX-512) and selected once at startup by CPUID, overridable with the
// QSV_SIMD environment variable.
//
// Contract (see docs/KERNELS.md for the full ABI):
//  * Every backend produces bit-identical amplitudes for every entry. The
//    vector kernels mirror the scalar complex-arithmetic operation order
//    exactly, use no FMA, and every backend translation unit is compiled
//    with -ffp-contract=off, so dispatch never changes results.
//  * Spans always cover a power-of-two number of amplitudes (a slice or a
//    sweep tile), so vector main loops never need remainder handling —
//    backends fall back to their scalar path below a minimum span size.
//  * Entries may delegate: a backend only overrides the kernels it
//    vectorises and forwards the rest to another backend's table.
#pragma once

#include <concepts>
#include <optional>
#include <string>

#include "circuit/matrix.hpp"
#include "common/types.hpp"

namespace qsv::simd {

// ---------------------------------------------------------------------------
// Backends and dispatch
// ---------------------------------------------------------------------------

enum class Backend {
  kScalar = 0,  // portable reference (also the non-x86 fallback)
  kAvx2 = 1,    // 256-bit split re/im lanes
  kAvx512 = 2,  // 512-bit; composes AVX2 entries for unvectorised kernels
};
inline constexpr int kBackendCount = 3;

/// Stable lowercase name ("scalar", "avx2", "avx512"); also the accepted
/// QSV_SIMD values.
[[nodiscard]] const char* backend_name(Backend b);

/// Parses a backend name; nullopt for anything unrecognised.
[[nodiscard]] std::optional<Backend> backend_from_name(const std::string& s);

/// True if the backend was compiled into this binary (compiler supported
/// the ISA flags; always true for kScalar).
[[nodiscard]] bool backend_compiled(Backend b);

/// True if the backend is compiled in AND the host CPU supports it.
[[nodiscard]] bool backend_supported(Backend b);

/// The highest-ranked supported backend (avx512 > avx2 > scalar).
[[nodiscard]] Backend best_backend();

/// The backend every kernel dispatches through. Resolved once on first use:
/// QSV_SIMD=scalar|avx2|avx512 pins it (an unsupported or unknown value
/// throws qsv::Error), unset or QSV_SIMD=auto picks best_backend().
[[nodiscard]] Backend active_backend();

/// Where the active backend came from: "env", "auto", or "override".
[[nodiscard]] const char* active_backend_origin();

/// Replaces the active backend (tests and benchmarks; not thread-safe
/// against in-flight kernels). Throws qsv::Error if unsupported.
void set_active_backend(Backend b);

// ---------------------------------------------------------------------------
// Span ABI
// ---------------------------------------------------------------------------

/// Contiguous split-component view: re[i]/im[i] hold amplitude i of the
/// span. `n` is a power of two.
struct SoaSpan {
  real_t* re;
  real_t* im;
  amp_index n;
};

/// Contiguous interleaved view: amp[i] is amplitude i. `n` is a power of
/// two.
struct AosSpan {
  cplx* amp;
  amp_index n;
};

/// Slice types that can hand out a SoaSpan (SoaStorage and any view over
/// it, e.g. the sweep executor's TileView).
template <class S>
concept SoaSpanAccess = requires(S& s) {
  { s.re() } -> std::convertible_to<real_t*>;
  { s.im() } -> std::convertible_to<real_t*>;
  { s.size() } -> std::convertible_to<amp_index>;
};

/// Slice types that can hand out an AosSpan.
template <class S>
concept AosSpanAccess = requires(S& s) {
  { s.data() } -> std::convertible_to<cplx*>;
  { s.size() } -> std::convertible_to<amp_index>;
};

template <SoaSpanAccess S>
[[nodiscard]] SoaSpan soa_span(S& s) {
  return {s.re(), s.im(), s.size()};
}

template <AosSpanAccess S>
[[nodiscard]] AosSpan aos_span(S& s) {
  return {s.data(), s.size()};
}

// ---------------------------------------------------------------------------
// Kernel table
// ---------------------------------------------------------------------------

/// One entry per hot dense kernel per layout. Semantics match the reference
/// loops in sv/kernels.hpp exactly (same pair/quad enumeration, same
/// control-mask gating, same complex operation order):
///  * matrix1: 2x2 on index pairs differing in bit `target`; pairs whose
///    zero-member fails `ctrl` are untouched.
///  * matrix2: 4x4 on quads over bits `a` (low subspace bit) and `b`;
///    subspace index order is (bit b, bit a); `ctrl` gates the quad base.
///  * swap: exchanges amplitudes across bits `a`/`b`.
///  * phase: multiplies amplitudes with all `mask` bits set by `factor`.
///  * rz: amplitudes matching `ctrl` are multiplied by f1 when bit
///    `target` is set, f0 otherwise.
struct KernelOps {
  const char* name;
  void (*matrix1_soa)(const SoaSpan&, int target, const Mat2&, amp_index ctrl);
  void (*matrix1_aos)(const AosSpan&, int target, const Mat2&, amp_index ctrl);
  void (*matrix2_soa)(const SoaSpan&, int a, int b, const Mat4&,
                      amp_index ctrl);
  void (*matrix2_aos)(const AosSpan&, int a, int b, const Mat4&,
                      amp_index ctrl);
  void (*swap_soa)(const SoaSpan&, int a, int b);
  void (*swap_aos)(const AosSpan&, int a, int b);
  void (*phase_soa)(const SoaSpan&, amp_index mask, cplx factor);
  void (*phase_aos)(const AosSpan&, amp_index mask, cplx factor);
  void (*rz_soa)(const SoaSpan&, int target, cplx f0, cplx f1,
                 amp_index ctrl);
  void (*rz_aos)(const AosSpan&, int target, cplx f0, cplx f1,
                 amp_index ctrl);
};

/// Table of a specific backend (must be supported).
[[nodiscard]] const KernelOps& ops_for(Backend b);

/// Table of the active backend — what the gate kernels call.
[[nodiscard]] const KernelOps& ops();

}  // namespace qsv::simd
