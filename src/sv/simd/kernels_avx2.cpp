// AVX2 backend: 256-bit split re/im lanes over the SoA layout.
//
// Compiled with -mavx2 -ffp-contract=off (no FMA: the bit-identity contract
// requires the scalar backend's separate multiply/add rounding). Only the
// kernel-table getter is exported; everything else is file-local so no
// AVX2-compiled symbol can leak into translation units built for the
// baseline ISA.
//
// Vector main paths mirror the scalar reference operation-for-operation per
// lane, so the amplitudes they produce are bit-identical to the scalar
// backend's. Pair groups are loaded as whole vectors: for target bit t >= 2
// the four pair members are contiguous at stride 2^t; for t = 0 and t = 1
// the pairs interleave inside a 8-amplitude group and are separated with
// unpack / 128-bit-permute shuffles (a pure relabelling — per-lane
// arithmetic is unaffected, and pairs are independent, so processing order
// does not matter).
//
// Anything without a vector path here (control masks on dense kernels, tiny
// spans, low swap/matrix2 strides, and the whole interleaved AoS layout,
// which split lanes do not fit) forwards to the scalar backend's entry.
#include <immintrin.h>

#include "common/bits.hpp"
#include "sv/simd/backends.hpp"

namespace qsv::simd {
namespace {

using std::int64_t;
using v4d = __m256d;

// Broadcast components of a 2x2 complex matrix.
struct BMat2 {
  v4d r00, i00, r01, i01, r10, i10, r11, i11;
};

BMat2 broadcast2(const Mat2& u) {
  return {_mm256_set1_pd(u.m[0][0].real()), _mm256_set1_pd(u.m[0][0].imag()),
          _mm256_set1_pd(u.m[0][1].real()), _mm256_set1_pd(u.m[0][1].imag()),
          _mm256_set1_pd(u.m[1][0].real()), _mm256_set1_pd(u.m[1][0].imag()),
          _mm256_set1_pd(u.m[1][1].real()), _mm256_set1_pd(u.m[1][1].imag())};
}

/// new0/new1 from (a0, a1) in split lanes, mirroring the scalar order:
/// n0r = (u00r*a0r - u00i*a0i) + (u01r*a1r - u01i*a1i), etc.
inline void mat2_lanes(const BMat2& u, v4d a0r, v4d a0i, v4d a1r, v4d a1i,
                       v4d& n0r, v4d& n0i, v4d& n1r, v4d& n1i) {
  n0r = _mm256_add_pd(
      _mm256_sub_pd(_mm256_mul_pd(u.r00, a0r), _mm256_mul_pd(u.i00, a0i)),
      _mm256_sub_pd(_mm256_mul_pd(u.r01, a1r), _mm256_mul_pd(u.i01, a1i)));
  n0i = _mm256_add_pd(
      _mm256_add_pd(_mm256_mul_pd(u.r00, a0i), _mm256_mul_pd(u.i00, a0r)),
      _mm256_add_pd(_mm256_mul_pd(u.r01, a1i), _mm256_mul_pd(u.i01, a1r)));
  n1r = _mm256_add_pd(
      _mm256_sub_pd(_mm256_mul_pd(u.r10, a0r), _mm256_mul_pd(u.i10, a0i)),
      _mm256_sub_pd(_mm256_mul_pd(u.r11, a1r), _mm256_mul_pd(u.i11, a1i)));
  n1i = _mm256_add_pd(
      _mm256_add_pd(_mm256_mul_pd(u.r10, a0i), _mm256_mul_pd(u.i10, a0r)),
      _mm256_add_pd(_mm256_mul_pd(u.r11, a1i), _mm256_mul_pd(u.i11, a1r)));
}

/// Lane-selection mask for the low two index bits: lane l (amplitude index
/// base + l, base a multiple of 4) is selected when (l & lo2) == lo2.
v4d low2_lane_mask(amp_index lo2) {
  const auto lane = [lo2](long long l) -> long long {
    return (static_cast<amp_index>(l) & lo2) == lo2 ? -1 : 0;
  };
  return _mm256_castsi256_pd(
      _mm256_set_epi64x(lane(3), lane(2), lane(1), lane(0)));
}

void matrix1_soa(const SoaSpan& s, int target, const Mat2& u,
                 amp_index ctrl) {
  if (ctrl != 0 || s.n < 8) {
    scalar_ops().matrix1_soa(s, target, u, ctrl);
    return;
  }
  real_t* const re = s.re;
  real_t* const im = s.im;
  const BMat2 b = broadcast2(u);

  if (target >= 2) {
    const int64_t stride = int64_t{1} << target;
    const int64_t blocks = static_cast<int64_t>(s.n) / (2 * stride);
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (int64_t blk = 0; blk < blocks; ++blk) {
      for (int64_t off = 0; off < stride; off += 4) {
        const int64_t i0 = blk * 2 * stride + off;
        const int64_t i1 = i0 + stride;
        const v4d a0r = _mm256_loadu_pd(re + i0);
        const v4d a0i = _mm256_loadu_pd(im + i0);
        const v4d a1r = _mm256_loadu_pd(re + i1);
        const v4d a1i = _mm256_loadu_pd(im + i1);
        v4d n0r, n0i, n1r, n1i;
        mat2_lanes(b, a0r, a0i, a1r, a1i, n0r, n0i, n1r, n1i);
        _mm256_storeu_pd(re + i0, n0r);
        _mm256_storeu_pd(im + i0, n0i);
        _mm256_storeu_pd(re + i1, n1r);
        _mm256_storeu_pd(im + i1, n1i);
      }
    }
    return;
  }

  // target 0 or 1: pairs interleave inside each 8-amplitude group. Split
  // them with shuffles, compute, and shuffle back (self-inverse patterns).
  const bool adjacent = target == 0;
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t base = 0; base < n; base += 8) {
    const v4d Ar = _mm256_loadu_pd(re + base);
    const v4d Br = _mm256_loadu_pd(re + base + 4);
    const v4d Ai = _mm256_loadu_pd(im + base);
    const v4d Bi = _mm256_loadu_pd(im + base + 4);
    v4d a0r, a1r, a0i, a1i;
    if (adjacent) {  // target 0: even/odd split
      a0r = _mm256_unpacklo_pd(Ar, Br);
      a1r = _mm256_unpackhi_pd(Ar, Br);
      a0i = _mm256_unpacklo_pd(Ai, Bi);
      a1i = _mm256_unpackhi_pd(Ai, Bi);
    } else {  // target 1: 128-bit halves alternate
      a0r = _mm256_permute2f128_pd(Ar, Br, 0x20);
      a1r = _mm256_permute2f128_pd(Ar, Br, 0x31);
      a0i = _mm256_permute2f128_pd(Ai, Bi, 0x20);
      a1i = _mm256_permute2f128_pd(Ai, Bi, 0x31);
    }
    v4d n0r, n0i, n1r, n1i;
    mat2_lanes(b, a0r, a0i, a1r, a1i, n0r, n0i, n1r, n1i);
    v4d Cr, Dr, Ci, Di;
    if (adjacent) {
      Cr = _mm256_unpacklo_pd(n0r, n1r);
      Dr = _mm256_unpackhi_pd(n0r, n1r);
      Ci = _mm256_unpacklo_pd(n0i, n1i);
      Di = _mm256_unpackhi_pd(n0i, n1i);
    } else {
      Cr = _mm256_permute2f128_pd(n0r, n1r, 0x20);
      Dr = _mm256_permute2f128_pd(n0r, n1r, 0x31);
      Ci = _mm256_permute2f128_pd(n0i, n1i, 0x20);
      Di = _mm256_permute2f128_pd(n0i, n1i, 0x31);
    }
    _mm256_storeu_pd(re + base, Cr);
    _mm256_storeu_pd(re + base + 4, Dr);
    _mm256_storeu_pd(im + base, Ci);
    _mm256_storeu_pd(im + base + 4, Di);
  }
}

void matrix2_soa(const SoaSpan& s, int a, int b, const Mat4& u,
                 amp_index ctrl) {
  const int lo = a < b ? a : b;
  if (ctrl != 0 || lo < 2 || s.n < 16) {
    scalar_ops().matrix2_soa(s, a, b, u, ctrl);
    return;
  }
  real_t* const re = s.re;
  real_t* const im = s.im;
  const int hi = a < b ? b : a;
  const int64_t sa = int64_t{1} << a;
  const int64_t sb = int64_t{1} << b;
  v4d ur[4][4], ui[4][4];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      ur[r][c] = _mm256_set1_pd(u.m[r][c].real());
      ui[r][c] = _mm256_set1_pd(u.m[r][c].imag());
    }
  }
  const int64_t quads = static_cast<int64_t>(s.n) / 4;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t k = 0; k < quads; k += 4) {
    // lo >= 2: the 4 consecutive quad counters share one contiguous base.
    const int64_t base = static_cast<int64_t>(
        bits::insert_two_zero_bits(static_cast<amp_index>(k), lo, hi));
    int64_t idx[4];
    v4d inr[4], ini[4];
    for (int sub = 0; sub < 4; ++sub) {
      idx[sub] = base + ((sub & 1) ? sa : 0) + ((sub & 2) ? sb : 0);
      inr[sub] = _mm256_loadu_pd(re + idx[sub]);
      ini[sub] = _mm256_loadu_pd(im + idx[sub]);
    }
    for (int row = 0; row < 4; ++row) {
      v4d accr = _mm256_setzero_pd();
      v4d acci = _mm256_setzero_pd();
      for (int col = 0; col < 4; ++col) {
        accr = _mm256_add_pd(
            accr, _mm256_sub_pd(_mm256_mul_pd(ur[row][col], inr[col]),
                                _mm256_mul_pd(ui[row][col], ini[col])));
        acci = _mm256_add_pd(
            acci, _mm256_add_pd(_mm256_mul_pd(ur[row][col], ini[col]),
                                _mm256_mul_pd(ui[row][col], inr[col])));
      }
      _mm256_storeu_pd(re + idx[row], accr);
      _mm256_storeu_pd(im + idx[row], acci);
    }
  }
}

void swap_soa(const SoaSpan& s, int a, int b) {
  const int lo = a < b ? a : b;
  if (lo < 2 || s.n < 16) {
    scalar_ops().swap_soa(s, a, b);
    return;
  }
  real_t* const re = s.re;
  real_t* const im = s.im;
  const int hi = a < b ? b : a;
  const int64_t quads = static_cast<int64_t>(s.n) / 4;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t k = 0; k < quads; k += 4) {
    amp_index i =
        bits::insert_two_zero_bits(static_cast<amp_index>(k), lo, hi);
    i = bits::set_bit(i, lo);
    const amp_index j = bits::set_bit(bits::clear_bit(i, lo), hi);
    const v4d xr = _mm256_loadu_pd(re + i);
    const v4d xi = _mm256_loadu_pd(im + i);
    const v4d yr = _mm256_loadu_pd(re + j);
    const v4d yi = _mm256_loadu_pd(im + j);
    _mm256_storeu_pd(re + i, yr);
    _mm256_storeu_pd(im + i, yi);
    _mm256_storeu_pd(re + j, xr);
    _mm256_storeu_pd(im + j, xi);
  }
}

void phase_soa(const SoaSpan& s, amp_index mask, cplx factor) {
  if (s.n < 4) {
    scalar_ops().phase_soa(s, mask, factor);
    return;
  }
  real_t* const re = s.re;
  real_t* const im = s.im;
  // Lanes always carry index low bits 0..3, so the low-mask selection is one
  // constant blend mask; the high part of the mask is uniform per vector.
  const v4d lane = low2_lane_mask(mask & 3);
  const amp_index mask_hi = mask & ~amp_index{3};
  const v4d fr = _mm256_set1_pd(factor.real());
  const v4d fi = _mm256_set1_pd(factor.imag());
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t base = 0; base < n; base += 4) {
    if (!bits::all_set(static_cast<amp_index>(base), mask_hi)) {
      continue;
    }
    const v4d vr = _mm256_loadu_pd(re + base);
    const v4d vi = _mm256_loadu_pd(im + base);
    const v4d nr =
        _mm256_sub_pd(_mm256_mul_pd(vr, fr), _mm256_mul_pd(vi, fi));
    const v4d ni =
        _mm256_add_pd(_mm256_mul_pd(vr, fi), _mm256_mul_pd(vi, fr));
    _mm256_storeu_pd(re + base, _mm256_blendv_pd(vr, nr, lane));
    _mm256_storeu_pd(im + base, _mm256_blendv_pd(vi, ni, lane));
  }
}

void rz_soa(const SoaSpan& s, int target, cplx f0, cplx f1, amp_index ctrl) {
  if (s.n < 4) {
    scalar_ops().rz_soa(s, target, f0, f1, ctrl);
    return;
  }
  real_t* const re = s.re;
  real_t* const im = s.im;
  const v4d ctrl_lane = low2_lane_mask(ctrl & 3);
  const amp_index ctrl_hi = ctrl & ~amp_index{3};
  const v4d f0r = _mm256_set1_pd(f0.real()), f0i = _mm256_set1_pd(f0.imag());
  const v4d f1r = _mm256_set1_pd(f1.real()), f1i = _mm256_set1_pd(f1.imag());

  // Which lanes/vectors see f1: below bit 2 it is a fixed lane pattern,
  // otherwise it is uniform across the vector and chosen per iteration.
  v4d frv_fixed = f0r, fiv_fixed = f0i;
  const bool lane_target = target < 2;
  if (lane_target) {
    const auto sel = [target](long long l) -> long long {
      return ((l >> target) & 1) ? -1 : 0;
    };
    const v4d tmask = _mm256_castsi256_pd(
        _mm256_set_epi64x(sel(3), sel(2), sel(1), sel(0)));
    frv_fixed = _mm256_blendv_pd(f0r, f1r, tmask);
    fiv_fixed = _mm256_blendv_pd(f0i, f1i, tmask);
  }
  const int64_t n = static_cast<int64_t>(s.n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t base = 0; base < n; base += 4) {
    if (!bits::all_set(static_cast<amp_index>(base), ctrl_hi)) {
      continue;
    }
    v4d frv = frv_fixed, fiv = fiv_fixed;
    if (!lane_target) {
      const bool one =
          bits::bit(static_cast<amp_index>(base), target) != 0;
      frv = one ? f1r : f0r;
      fiv = one ? f1i : f0i;
    }
    const v4d vr = _mm256_loadu_pd(re + base);
    const v4d vi = _mm256_loadu_pd(im + base);
    const v4d nr =
        _mm256_sub_pd(_mm256_mul_pd(vr, frv), _mm256_mul_pd(vi, fiv));
    const v4d ni =
        _mm256_add_pd(_mm256_mul_pd(vr, fiv), _mm256_mul_pd(vi, frv));
    _mm256_storeu_pd(re + base, _mm256_blendv_pd(vr, nr, ctrl_lane));
    _mm256_storeu_pd(im + base, _mm256_blendv_pd(vi, ni, ctrl_lane));
  }
}

// The interleaved AoS layout does not fit split re/im lanes; its entries
// forward to the scalar backend (micro_layout / micro_sweep quantify the
// resulting SoA-vs-AoS gap under vectorisation).
void matrix1_aos(const AosSpan& s, int t, const Mat2& u, amp_index c) {
  scalar_ops().matrix1_aos(s, t, u, c);
}
void matrix2_aos(const AosSpan& s, int a, int b, const Mat4& u,
                 amp_index c) {
  scalar_ops().matrix2_aos(s, a, b, u, c);
}
void swap_aos(const AosSpan& s, int a, int b) {
  scalar_ops().swap_aos(s, a, b);
}
void phase_aos(const AosSpan& s, amp_index m, cplx f) {
  scalar_ops().phase_aos(s, m, f);
}
void rz_aos(const AosSpan& s, int t, cplx f0, cplx f1, amp_index c) {
  scalar_ops().rz_aos(s, t, f0, f1, c);
}

constexpr KernelOps kAvx2Ops = {
    "avx2",      matrix1_soa, matrix1_aos, matrix2_soa, matrix2_aos,
    swap_soa,    swap_aos,    phase_soa,   phase_aos,   rz_soa,
    rz_aos,
};

}  // namespace

const KernelOps& avx2_ops() { return kAvx2Ops; }

}  // namespace qsv::simd
