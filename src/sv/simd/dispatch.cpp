// Backend selection: compiled-in tables, CPUID capability checks, QSV_SIMD
// environment override, and the process-wide active backend.
#include <atomic>
#include <cstdlib>

#include "common/error.hpp"
#include "sv/simd/backends.hpp"

namespace qsv::simd {
namespace {

/// True if the host CPU can execute the backend's instructions.
bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

/// -1 while unresolved; otherwise the Backend value.
std::atomic<int> g_active{-1};
std::atomic<const char*> g_origin{"auto"};

Backend resolve() {
  if (const char* env = std::getenv("QSV_SIMD");
      env != nullptr && *env != '\0' && std::string(env) != "auto") {
    const std::optional<Backend> b = backend_from_name(env);
    QSV_REQUIRE(b.has_value(), std::string("QSV_SIMD: unknown backend '") +
                                   env + "' (use scalar|avx2|avx512|auto)");
    QSV_REQUIRE(backend_supported(*b),
                std::string("QSV_SIMD: backend '") + env +
                    "' is not available on this host (compiled: " +
                    (backend_compiled(*b) ? "yes" : "no") + ")");
    g_origin.store("env", std::memory_order_relaxed);
    return *b;
  }
  g_origin.store("auto", std::memory_order_relaxed);
  return best_backend();
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<Backend> backend_from_name(const std::string& s) {
  if (s == "scalar") return Backend::kScalar;
  if (s == "avx2") return Backend::kAvx2;
  if (s == "avx512") return Backend::kAvx512;
  return std::nullopt;
}

bool backend_compiled(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if QSV_SIMD_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Backend::kAvx512:
#if QSV_SIMD_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool backend_supported(Backend b) {
  return backend_compiled(b) && cpu_supports(b);
}

Backend best_backend() {
  if (backend_supported(Backend::kAvx512)) {
    return Backend::kAvx512;
  }
  if (backend_supported(Backend::kAvx2)) {
    return Backend::kAvx2;
  }
  return Backend::kScalar;
}

Backend active_backend() {
  int b = g_active.load(std::memory_order_acquire);
  if (b < 0) {
    const Backend r = resolve();
    g_active.store(static_cast<int>(r), std::memory_order_release);
    return r;
  }
  return static_cast<Backend>(b);
}

const char* active_backend_origin() {
  (void)active_backend();  // force resolution so origin is meaningful
  return g_origin.load(std::memory_order_relaxed);
}

void set_active_backend(Backend b) {
  QSV_REQUIRE(backend_supported(b), std::string("SIMD backend '") +
                                        backend_name(b) +
                                        "' is not available on this host");
  g_active.store(static_cast<int>(b), std::memory_order_release);
  g_origin.store("override", std::memory_order_relaxed);
}

const KernelOps& ops_for(Backend b) {
  QSV_REQUIRE(backend_supported(b), std::string("SIMD backend '") +
                                        backend_name(b) +
                                        "' is not available on this host");
  switch (b) {
    case Backend::kScalar:
      return scalar_ops();
    case Backend::kAvx2:
#if QSV_SIMD_HAVE_AVX2
      return avx2_ops();
#else
      break;
#endif
    case Backend::kAvx512:
#if QSV_SIMD_HAVE_AVX512
      return avx512_ops();
#else
      break;
#endif
  }
  return scalar_ops();  // unreachable: backend_supported gated above
}

const KernelOps& ops() { return ops_for(active_backend()); }

}  // namespace qsv::simd
