#include "sv/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "sv/kernels.hpp"

namespace qsv {

template <class S>
BasicStateVector<S>::BasicStateVector(int num_qubits)
    : num_qubits_(num_qubits),
      storage_(amp_index{1} << num_qubits) {
  QSV_REQUIRE(num_qubits >= 1 && num_qubits <= 30,
              "in-memory statevector supports 1..30 qubits");
  init_zero_state();
}

template <class S>
cplx BasicStateVector<S>::amplitude(amp_index i) const {
  QSV_REQUIRE(i < num_amps(), "amplitude index out of range");
  return storage_.get(i);
}

template <class S>
void BasicStateVector<S>::set_amplitude(amp_index i, cplx v) {
  QSV_REQUIRE(i < num_amps(), "amplitude index out of range");
  storage_.set(i, v);
}

template <class S>
void BasicStateVector<S>::init_zero_state() {
  storage_.fill_zero();
  storage_.set(0, cplx{1, 0});
}

template <class S>
void BasicStateVector<S>::init_basis_state(amp_index index) {
  QSV_REQUIRE(index < num_amps(), "basis state out of range");
  storage_.fill_zero();
  storage_.set(index, cplx{1, 0});
}

template <class S>
void BasicStateVector<S>::init_random_state(Rng& rng) {
  const amp_index n = num_amps();
  real_t norm = 0;
  for (amp_index i = 0; i < n; ++i) {
    // Gaussian-ish via sum of uniforms is unnecessary: uniform box sampling
    // followed by normalisation gives a valid random test state.
    const cplx v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    storage_.set(i, v);
    norm += std::norm(v);
  }
  const real_t scale = 1 / std::sqrt(norm);
  for (amp_index i = 0; i < n; ++i) {
    storage_.set(i, storage_.get(i) * scale);
  }
}

template <class S>
void BasicStateVector<S>::apply(const Gate& g) {
  QSV_REQUIRE(g.max_qubit() < num_qubits_, "gate qubit out of range");
  // Single address space: everything is local (local_qubits = n, rank 0).
  kern::apply_gate_slice(storage_, g, num_qubits_, 0);
}

template <class S>
void BasicStateVector<S>::apply(const Circuit& c) {
  QSV_REQUIRE(c.num_qubits() == num_qubits_, "register size mismatch");
  const std::vector<GateRun> runs =
      plan_sweep_runs(c.gates(), num_qubits_, sweep_opts_);
  const int t = std::min(sweep_opts_.tile_qubits, num_qubits_);
  for (const GateRun& run : runs) {
    if (run.sweep) {
      kern::apply_sweep_run(storage_, c.gates().data() + run.first, run.count,
                            t, num_qubits_, /*rank_bits=*/0);
      sweep_stats_.add_run(run.count, num_amps() >> t);
    } else {
      for (std::size_t i = 0; i < run.count; ++i) {
        apply(c.gate(run.first + i));
      }
    }
  }
}

template <class S>
real_t BasicStateVector<S>::probability_of_one(qubit_t qubit) const {
  QSV_REQUIRE(qubit >= 0 && qubit < num_qubits_, "qubit out of range");
  const amp_index n = num_amps();
  real_t p = 0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : p) schedule(static)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (bits::bit(static_cast<amp_index>(i), qubit)) {
      p += std::norm(storage_.get(i));
    }
  }
  return p;
}

template <class S>
real_t BasicStateVector<S>::probability_of_outcome(amp_index index) const {
  QSV_REQUIRE(index < num_amps(), "outcome out of range");
  return std::norm(storage_.get(index));
}

template <class S>
int BasicStateVector<S>::measure(qubit_t qubit, Rng& rng) {
  const real_t p1 = probability_of_one(qubit);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const real_t keep_p = outcome ? p1 : 1 - p1;
  QSV_REQUIRE(keep_p > 0, "measured an outcome with zero probability");
  const real_t scale = 1 / std::sqrt(keep_p);
  const amp_index n = num_amps();
  for (amp_index i = 0; i < n; ++i) {
    if (bits::bit(i, qubit) == outcome) {
      storage_.set(i, storage_.get(i) * scale);
    } else {
      storage_.set(i, cplx{0, 0});
    }
  }
  return outcome;
}

template <class S>
amp_index BasicStateVector<S>::sample(Rng& rng) const {
  const real_t r = rng.uniform() * norm_sq();
  real_t acc = 0;
  const amp_index n = num_amps();
  for (amp_index i = 0; i < n; ++i) {
    acc += std::norm(storage_.get(i));
    if (acc >= r) {
      return i;
    }
  }
  return n - 1;  // numerical slack: the tail state
}

template <class S>
std::map<amp_index, int> BasicStateVector<S>::sample_counts(int shots,
                                                            Rng& rng) const {
  QSV_REQUIRE(shots >= 0, "negative shot count");
  std::map<amp_index, int> counts;
  for (int s = 0; s < shots; ++s) {
    ++counts[sample(rng)];
  }
  return counts;
}

template <class S>
real_t BasicStateVector<S>::norm_sq() const {
  const amp_index n = num_amps();
  real_t acc = 0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : acc) schedule(static)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    acc += std::norm(storage_.get(i));
  }
  return acc;
}

template <class S>
cplx BasicStateVector<S>::inner_product(const BasicStateVector& other) const {
  QSV_REQUIRE(num_qubits_ == other.num_qubits_, "register size mismatch");
  cplx acc = 0;
  const amp_index n = num_amps();
  for (amp_index i = 0; i < n; ++i) {
    acc += std::conj(storage_.get(i)) * other.storage_.get(i);
  }
  return acc;
}

template <class S>
real_t BasicStateVector<S>::fidelity(const BasicStateVector& other) const {
  return std::norm(inner_product(other));
}

template <class S>
real_t BasicStateVector<S>::max_amp_diff(const BasicStateVector& other) const {
  QSV_REQUIRE(num_qubits_ == other.num_qubits_, "register size mismatch");
  real_t m = 0;
  const amp_index n = num_amps();
  for (amp_index i = 0; i < n; ++i) {
    m = std::max(m, std::abs(storage_.get(i) - other.storage_.get(i)));
  }
  return m;
}

template <class S>
std::vector<cplx> BasicStateVector<S>::to_vector() const {
  std::vector<cplx> v(num_amps());
  for (amp_index i = 0; i < num_amps(); ++i) {
    v[i] = storage_.get(i);
  }
  return v;
}

template class BasicStateVector<SoaStorage>;
template class BasicStateVector<AosStorage>;

}  // namespace qsv
