// Cache-tiled multi-gate sweep executor.
//
// Applies a run of sweepable gates (see circuit/sweep_plan.hpp) to a slice
// one L2-sized tile at a time: the tile is loaded once, every gate of the
// run updates it in place, and only then does the next tile stream in. A
// run of k gates thus costs one pass over the slice instead of k — the same
// bytes-moved argument the paper makes for node-level cache blocking,
// applied inside a rank.
#pragma once

#include <cstddef>
#include <cstdint>

#include "circuit/gate.hpp"
#include "circuit/sweep_plan.hpp"
#include "common/types.hpp"

namespace qsv {

/// Counters an engine accumulates over its sweep runs.
struct SweepStats {
  std::uint64_t runs = 0;         // tiled runs executed
  std::uint64_t swept_gates = 0;  // gates folded into those runs
  std::uint64_t tiles = 0;        // per-slice tiles processed across runs
  /// Full passes over the slice avoided versus gate-by-gate execution
  /// (run of k gates: k passes become 1, saving k - 1).
  std::uint64_t passes_saved = 0;

  void add_run(std::uint64_t gates_in_run, std::uint64_t run_tiles) {
    ++runs;
    swept_gates += gates_in_run;
    tiles += run_tiles;
    passes_saved += gates_in_run - 1;
  }
};

namespace kern {

/// Applies gates[0 .. count) to every 2^min(tile_qubits, local_qubits)-
/// amplitude tile of `s`, tile by tile, with OpenMP parallelism across
/// tiles. `rank_bits` is the slice's rank id (0 for a single-address-space
/// state); every gate must be sweepable at the effective tile size.
template <class S>
void apply_sweep_run(S& s, const Gate* gates, std::size_t count,
                     int tile_qubits, int local_qubits, amp_index rank_bits);

/// Ready-region executor for the overlapped exchange pipeline: drives a
/// region kernel over [0, total) units chasing an arrival frontier instead
/// of waiting for the whole payload.
///
/// `ready()` advances the frontier — typically by receiving the next chunk
/// of an in-flight exchange — and returns the new watermark W (monotone,
/// eventually >= total): units [0, W) have arrived. `apply(first, count)`
/// is then invoked over the newly combinable span, broken into at most
/// `tile`-unit pieces so application stays cache-tiled while it chases the
/// frontier.
///
/// `align` (a power of two) bounds how far application may trail the
/// watermark: apply only ever sees spans whose boundaries are multiples of
/// `align`, except the final span which ends exactly at `total`. A kernel
/// whose unit i reads a partner unit within the same align-sized block
/// (combine_swap_one_high_range reads flip_bit(i, a): align = 2^(a+1)) is
/// therefore never handed a region whose partner data has not arrived.
/// Pass align = 1 for purely elementwise kernels.
///
/// Units are deliberately abstract: amplitudes for full-slice exchanges,
/// bytes (align = kBytesPerAmp) for packed half-exchange streams.
///
/// Regions are applied strictly in increasing order, each unit exactly
/// once, with the same per-unit arithmetic a single full pass would run —
/// this is what makes the overlapped path bitwise identical to the serial
/// one.
template <class ReadyFn, class ApplyFn>
void apply_over_frontier(amp_index total, amp_index align, amp_index tile,
                         ReadyFn&& ready, ApplyFn&& apply) {
  amp_index done = 0;
  while (done < total) {
    const amp_index w = ready();
    // Hold application back to the last alignment boundary at or below the
    // watermark; once everything has arrived, run out to the exact end.
    const amp_index safe = w >= total ? total : w & ~(align - 1);
    for (amp_index first = done; first < safe; first += tile) {
      const amp_index count = std::min(tile, safe - first);
      apply(first, count);
    }
    done = std::max(done, safe);
  }
}

}  // namespace kern
}  // namespace qsv
