// Cache-tiled multi-gate sweep executor.
//
// Applies a run of sweepable gates (see circuit/sweep_plan.hpp) to a slice
// one L2-sized tile at a time: the tile is loaded once, every gate of the
// run updates it in place, and only then does the next tile stream in. A
// run of k gates thus costs one pass over the slice instead of k — the same
// bytes-moved argument the paper makes for node-level cache blocking,
// applied inside a rank.
#pragma once

#include <cstddef>
#include <cstdint>

#include "circuit/gate.hpp"
#include "circuit/sweep_plan.hpp"
#include "common/types.hpp"

namespace qsv {

/// Counters an engine accumulates over its sweep runs.
struct SweepStats {
  std::uint64_t runs = 0;         // tiled runs executed
  std::uint64_t swept_gates = 0;  // gates folded into those runs
  std::uint64_t tiles = 0;        // per-slice tiles processed across runs
  /// Full passes over the slice avoided versus gate-by-gate execution
  /// (run of k gates: k passes become 1, saving k - 1).
  std::uint64_t passes_saved = 0;

  void add_run(std::uint64_t gates_in_run, std::uint64_t run_tiles) {
    ++runs;
    swept_gates += gates_in_run;
    tiles += run_tiles;
    passes_saved += gates_in_run - 1;
  }
};

namespace kern {

/// Applies gates[0 .. count) to every 2^min(tile_qubits, local_qubits)-
/// amplitude tile of `s`, tile by tile, with OpenMP parallelism across
/// tiles. `rank_bits` is the slice's rank id (0 for a single-address-space
/// state); every gate must be sweepable at the effective tile size.
template <class S>
void apply_sweep_run(S& s, const Gate* gates, std::size_t count,
                     int tile_qubits, int local_qubits, amp_index rank_bits);

}  // namespace kern
}  // namespace qsv
