// Single-address-space statevector simulator (the "one big node" view).
//
// This is the reference engine: the distributed engine must agree with it
// amplitude-for-amplitude on every circuit. It is also the engine behind the
// examples when they run on a single simulated node.
#pragma once

#include <map>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "circuit/sweep_plan.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sv/storage.hpp"
#include "sv/sweep.hpp"

namespace qsv {

/// Statevector over `num_qubits` qubits with storage layout `S`
/// (SoaStorage or AosStorage).
template <class S>
class BasicStateVector {
 public:
  /// Initialises |0...0>.
  explicit BasicStateVector(int num_qubits);

  [[nodiscard]] int num_qubits() const { return num_qubits_; }
  [[nodiscard]] amp_index num_amps() const { return storage_.size(); }

  [[nodiscard]] cplx amplitude(amp_index i) const;
  void set_amplitude(amp_index i, cplx v);

  /// Resets to |0...0>.
  void init_zero_state();

  /// Resets to the computational basis state |index>.
  void init_basis_state(amp_index index);

  /// Initialises to a normalised random state (deterministic per rng state).
  void init_random_state(Rng& rng);

  /// Applies one gate.
  void apply(const Gate& g);

  /// Applies every gate of a circuit (register sizes must match). Runs of
  /// consecutive cache-tileable gates execute through the sweep executor
  /// (one pass over the statevector per run) when sweeping is enabled —
  /// the default; results are identical to gate-by-gate application.
  void apply(const Circuit& c);

  /// Sweep-executor knobs (enabled/tile size/minimum run length).
  void set_sweep_options(const SweepOptions& opts) { sweep_opts_ = opts; }
  [[nodiscard]] const SweepOptions& sweep_options() const {
    return sweep_opts_;
  }

  /// Counters over every sweep run executed so far.
  [[nodiscard]] const SweepStats& sweep_stats() const { return sweep_stats_; }

  /// Probability that measuring `qubit` yields 1.
  [[nodiscard]] real_t probability_of_one(qubit_t qubit) const;

  /// Probability of the full basis outcome |index>.
  [[nodiscard]] real_t probability_of_outcome(amp_index index) const;

  /// Measures `qubit`, collapsing the state; returns the outcome (0/1).
  int measure(qubit_t qubit, Rng& rng);

  /// Samples a full basis state without collapsing.
  [[nodiscard]] amp_index sample(Rng& rng) const;

  /// Draws `shots` samples and returns outcome -> count (the shot
  /// histogram a real quantum device would produce).
  [[nodiscard]] std::map<amp_index, int> sample_counts(int shots,
                                                       Rng& rng) const;

  /// Squared norm (should stay 1 under unitary evolution).
  [[nodiscard]] real_t norm_sq() const;

  /// <this|other>.
  [[nodiscard]] cplx inner_product(const BasicStateVector& other) const;

  /// |<this|other>|^2.
  [[nodiscard]] real_t fidelity(const BasicStateVector& other) const;

  /// max_i |this_i - other_i|.
  [[nodiscard]] real_t max_amp_diff(const BasicStateVector& other) const;

  /// All amplitudes as a dense vector (test utility; register must be small).
  [[nodiscard]] std::vector<cplx> to_vector() const;

  /// Direct storage access (used by the micro-benchmarks).
  [[nodiscard]] S& storage() { return storage_; }
  [[nodiscard]] const S& storage() const { return storage_; }

 private:
  int num_qubits_;
  S storage_;
  SweepOptions sweep_opts_;
  SweepStats sweep_stats_;
};

using StateVector = BasicStateVector<SoaStorage>;        // QuEST layout
using StateVectorAos = BasicStateVector<AosStorage>;     // future-work layout

extern template class BasicStateVector<SoaStorage>;
extern template class BasicStateVector<AosStorage>;

}  // namespace qsv
