// Amplitude storage layouts.
//
// QuEST stores amplitudes as two separate real/imaginary arrays (structure
// of arrays); the paper's future-work list proposes an interleaved complex
// layout for better data locality. Both are provided behind one inline
// interface so every kernel and both engines work with either; the
// micro-benchmarks (bench/micro_layout) compare them.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace qsv {

enum class Layout {
  kSeparateArrays,  // QuEST-style: double re[], double im[]
  kInterleaved,     // std::complex<double>[]
};

[[nodiscard]] inline const char* layout_name(Layout layout) {
  return layout == Layout::kSeparateArrays ? "separate-arrays"
                                           : "interleaved";
}

/// Separate real/imaginary arrays (QuEST's layout).
class SoaStorage {
 public:
  static constexpr Layout kLayout = Layout::kSeparateArrays;

  SoaStorage() = default;
  explicit SoaStorage(amp_index n) : re_(n), im_(n) {}

  [[nodiscard]] amp_index size() const { return re_.size(); }

  [[nodiscard]] cplx get(amp_index i) const { return {re_[i], im_[i]}; }
  void set(amp_index i, cplx v) {
    re_[i] = v.real();
    im_[i] = v.imag();
  }

  /// Direct component access for the hot kernels.
  [[nodiscard]] real_t* re() { return re_.data(); }
  [[nodiscard]] real_t* im() { return im_.data(); }
  [[nodiscard]] const real_t* re() const { return re_.data(); }
  [[nodiscard]] const real_t* im() const { return im_.data(); }

  void fill_zero() {
    std::memset(re_.data(), 0, re_.size() * sizeof(real_t));
    std::memset(im_.data(), 0, im_.size() * sizeof(real_t));
  }

  /// Serialises amplitudes [first, first+count) into a byte buffer
  /// (re then im, contiguous), as a message payload. Returns bytes written.
  std::size_t pack(amp_index first, amp_index count, std::byte* out) const {
    QSV_REQUIRE(first + count <= size(), "pack range out of bounds");
    std::memcpy(out, re_.data() + first, count * sizeof(real_t));
    std::memcpy(out + count * sizeof(real_t), im_.data() + first,
                count * sizeof(real_t));
    return count * kBytesPerAmp;
  }

  /// Inverse of pack.
  void unpack(amp_index first, amp_index count, const std::byte* in) {
    QSV_REQUIRE(first + count <= size(), "unpack range out of bounds");
    std::memcpy(re_.data() + first, in, count * sizeof(real_t));
    std::memcpy(im_.data() + first, in + count * sizeof(real_t),
                count * sizeof(real_t));
  }

 private:
  std::vector<real_t> re_;
  std::vector<real_t> im_;
};

/// Interleaved complex array (the future-work layout).
class AosStorage {
 public:
  static constexpr Layout kLayout = Layout::kInterleaved;

  AosStorage() = default;
  explicit AosStorage(amp_index n) : amps_(n) {}

  [[nodiscard]] amp_index size() const { return amps_.size(); }

  [[nodiscard]] cplx get(amp_index i) const { return amps_[i]; }
  void set(amp_index i, cplx v) { amps_[i] = v; }

  [[nodiscard]] cplx* data() { return amps_.data(); }
  [[nodiscard]] const cplx* data() const { return amps_.data(); }

  void fill_zero() {
    std::fill(amps_.begin(), amps_.end(), cplx{0, 0});
  }

  std::size_t pack(amp_index first, amp_index count, std::byte* out) const {
    QSV_REQUIRE(first + count <= size(), "pack range out of bounds");
    std::memcpy(out, amps_.data() + first, count * sizeof(cplx));
    return count * kBytesPerAmp;
  }

  void unpack(amp_index first, amp_index count, const std::byte* in) {
    QSV_REQUIRE(first + count <= size(), "unpack range out of bounds");
    // GCC 12 misattributes the vector's heap buffer to a fixed-size array
    // when this inlines into callers with constant counts and raises a
    // bogus -Warray-bounds; the range is checked above.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
    std::memcpy(amps_.data() + first, in, count * sizeof(cplx));
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  }

 private:
  std::vector<cplx> amps_;
};

}  // namespace qsv
