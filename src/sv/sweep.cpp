#include "sv/sweep.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sv/kernels.hpp"
#include "sv/simd/simd.hpp"
#include "sv/storage.hpp"

namespace qsv::kern {
namespace {

/// Window over 2^t consecutive amplitudes of a slice, satisfying the same
/// get/set/size interface the gate kernels are templated over. Inside the
/// window the qubits at or above t act exactly like rank bits, so
/// apply_gate_slice handles high controls and diagonal high operands
/// unchanged.
///
/// When the underlying storage exposes raw arrays the view forwards them,
/// shifted by the tile offset: a tile is always a contiguous window, so the
/// dense kernels take the SIMD span fast path instead of paying a get/set
/// indirection per amplitude (which also defeats auto-vectorisation in the
/// scalar backend). Storage types without raw access still work through
/// get/set.
template <class S>
class TileView {
 public:
  TileView(S& s, amp_index offset, amp_index size)
      : s_(&s), offset_(offset), size_(size) {}

  [[nodiscard]] amp_index size() const { return size_; }
  [[nodiscard]] cplx get(amp_index i) const { return s_->get(offset_ + i); }
  void set(amp_index i, cplx v) { s_->set(offset_ + i, v); }

  [[nodiscard]] real_t* re()
    requires simd::SoaSpanAccess<S>
  {
    return s_->re() + offset_;
  }
  [[nodiscard]] real_t* im()
    requires simd::SoaSpanAccess<S>
  {
    return s_->im() + offset_;
  }
  [[nodiscard]] cplx* data()
    requires simd::AosSpanAccess<S>
  {
    return s_->data() + offset_;
  }

 private:
  S* s_;
  amp_index offset_;
  amp_index size_;
};

}  // namespace

template <class S>
void apply_sweep_run(S& s, const Gate* gates, std::size_t count,
                     int tile_qubits, int local_qubits, amp_index rank_bits) {
  const int t = std::min(tile_qubits, local_qubits);
  QSV_REQUIRE(t >= 1, "tiles hold at least 2 amplitudes");
  QSV_REQUIRE(s.size() == amp_index{1} << local_qubits,
              "slice size does not match local_qubits");
  for (std::size_t gi = 0; gi < count; ++gi) {
    QSV_REQUIRE(is_sweepable(gates[gi], t),
                "non-sweepable gate in a sweep run: " + gates[gi].str());
  }

  const amp_index tile_amps = amp_index{1} << t;
  const amp_index tiles = s.size() >> t;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t tile = 0; tile < static_cast<std::int64_t>(tiles);
       ++tile) {
    TileView<S> view(s, static_cast<amp_index>(tile) << t, tile_amps);
    // Global index bit q (q >= t) is bit (q - t) of this combined id, so
    // the tile is a virtual rank of the decomposition at L = t.
    const amp_index high_bits =
        (rank_bits << (local_qubits - t)) | static_cast<amp_index>(tile);
    for (std::size_t gi = 0; gi < count; ++gi) {
      apply_gate_slice(view, gates[gi], t, high_bits);
    }
  }
}

template void apply_sweep_run<SoaStorage>(SoaStorage&, const Gate*,
                                          std::size_t, int, int, amp_index);
template void apply_sweep_run<AosStorage>(AosStorage&, const Gate*,
                                          std::size_t, int, int, amp_index);

}  // namespace qsv::kern
