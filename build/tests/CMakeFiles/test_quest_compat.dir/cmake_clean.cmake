file(REMOVE_RECURSE
  "CMakeFiles/test_quest_compat.dir/test_quest_compat.cpp.o"
  "CMakeFiles/test_quest_compat.dir/test_quest_compat.cpp.o.d"
  "test_quest_compat"
  "test_quest_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quest_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
