# Empty compiler generated dependencies file for test_quest_compat.
# This may be replaced when dependencies are built.
