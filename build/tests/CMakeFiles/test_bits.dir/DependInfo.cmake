
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bits.cpp" "tests/CMakeFiles/test_bits.dir/test_bits.cpp.o" "gcc" "tests/CMakeFiles/test_bits.dir/test_bits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qsv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qsv_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sv/CMakeFiles/qsv_sv.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qsv_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/qsv_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/qsv_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/qsv_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/qsv_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/qsv_api.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
