# Empty dependencies file for test_qft.
# This may be replaced when dependencies are built.
