file(REMOVE_RECURSE
  "CMakeFiles/test_dist_property.dir/test_dist_property.cpp.o"
  "CMakeFiles/test_dist_property.dir/test_dist_property.cpp.o.d"
  "test_dist_property"
  "test_dist_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
