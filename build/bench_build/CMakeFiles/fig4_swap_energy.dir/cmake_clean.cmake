file(REMOVE_RECURSE
  "../bench/fig4_swap_energy"
  "../bench/fig4_swap_energy.pdb"
  "CMakeFiles/fig4_swap_energy.dir/fig4_swap_energy.cpp.o"
  "CMakeFiles/fig4_swap_energy.dir/fig4_swap_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_swap_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
