# Empty compiler generated dependencies file for fig4_swap_energy.
# This may be replaced when dependencies are built.
