file(REMOVE_RECURSE
  "../bench/fig3_relative_setups"
  "../bench/fig3_relative_setups.pdb"
  "CMakeFiles/fig3_relative_setups.dir/fig3_relative_setups.cpp.o"
  "CMakeFiles/fig3_relative_setups.dir/fig3_relative_setups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_relative_setups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
