# Empty dependencies file for fig3_relative_setups.
# This may be replaced when dependencies are built.
