file(REMOVE_RECURSE
  "../bench/ablation_strong_scaling"
  "../bench/ablation_strong_scaling.pdb"
  "CMakeFiles/ablation_strong_scaling.dir/ablation_strong_scaling.cpp.o"
  "CMakeFiles/ablation_strong_scaling.dir/ablation_strong_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
