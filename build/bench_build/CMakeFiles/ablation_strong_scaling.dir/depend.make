# Empty dependencies file for ablation_strong_scaling.
# This may be replaced when dependencies are built.
