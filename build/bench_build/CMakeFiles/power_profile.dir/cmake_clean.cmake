file(REMOVE_RECURSE
  "../bench/power_profile"
  "../bench/power_profile.pdb"
  "CMakeFiles/power_profile.dir/power_profile.cpp.o"
  "CMakeFiles/power_profile.dir/power_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
