# Empty compiler generated dependencies file for ablation_greedy_transpiler.
# This may be replaced when dependencies are built.
