file(REMOVE_RECURSE
  "../bench/ablation_greedy_transpiler"
  "../bench/ablation_greedy_transpiler.pdb"
  "CMakeFiles/ablation_greedy_transpiler.dir/ablation_greedy_transpiler.cpp.o"
  "CMakeFiles/ablation_greedy_transpiler.dir/ablation_greedy_transpiler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_greedy_transpiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
