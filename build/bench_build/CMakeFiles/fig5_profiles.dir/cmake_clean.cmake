file(REMOVE_RECURSE
  "../bench/fig5_profiles"
  "../bench/fig5_profiles.pdb"
  "CMakeFiles/fig5_profiles.dir/fig5_profiles.cpp.o"
  "CMakeFiles/fig5_profiles.dir/fig5_profiles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
