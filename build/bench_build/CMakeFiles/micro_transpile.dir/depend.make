# Empty dependencies file for micro_transpile.
# This may be replaced when dependencies are built.
