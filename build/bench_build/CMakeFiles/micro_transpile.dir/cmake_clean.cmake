file(REMOVE_RECURSE
  "../bench/micro_transpile"
  "../bench/micro_transpile.pdb"
  "CMakeFiles/micro_transpile.dir/micro_transpile.cpp.o"
  "CMakeFiles/micro_transpile.dir/micro_transpile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
