# Empty compiler generated dependencies file for table2_best_qft.
# This may be replaced when dependencies are built.
