file(REMOVE_RECURSE
  "../bench/table2_best_qft"
  "../bench/table2_best_qft.pdb"
  "CMakeFiles/table2_best_qft.dir/table2_best_qft.cpp.o"
  "CMakeFiles/table2_best_qft.dir/table2_best_qft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_best_qft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
