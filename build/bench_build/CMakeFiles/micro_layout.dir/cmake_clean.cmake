file(REMOVE_RECURSE
  "../bench/micro_layout"
  "../bench/micro_layout.pdb"
  "CMakeFiles/micro_layout.dir/micro_layout.cpp.o"
  "CMakeFiles/micro_layout.dir/micro_layout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
