# Empty compiler generated dependencies file for fig2_qft_runtimes.
# This may be replaced when dependencies are built.
