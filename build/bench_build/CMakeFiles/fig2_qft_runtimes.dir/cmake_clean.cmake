file(REMOVE_RECURSE
  "../bench/fig2_qft_runtimes"
  "../bench/fig2_qft_runtimes.pdb"
  "CMakeFiles/fig2_qft_runtimes.dir/fig2_qft_runtimes.cpp.o"
  "CMakeFiles/fig2_qft_runtimes.dir/fig2_qft_runtimes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_qft_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
