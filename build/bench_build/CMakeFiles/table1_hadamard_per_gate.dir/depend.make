# Empty dependencies file for table1_hadamard_per_gate.
# This may be replaced when dependencies are built.
