file(REMOVE_RECURSE
  "../bench/table1_hadamard_per_gate"
  "../bench/table1_hadamard_per_gate.pdb"
  "CMakeFiles/table1_hadamard_per_gate.dir/table1_hadamard_per_gate.cpp.o"
  "CMakeFiles/table1_hadamard_per_gate.dir/table1_hadamard_per_gate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hadamard_per_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
