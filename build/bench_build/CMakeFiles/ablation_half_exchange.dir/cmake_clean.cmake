file(REMOVE_RECURSE
  "../bench/ablation_half_exchange"
  "../bench/ablation_half_exchange.pdb"
  "CMakeFiles/ablation_half_exchange.dir/ablation_half_exchange.cpp.o"
  "CMakeFiles/ablation_half_exchange.dir/ablation_half_exchange.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_half_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
