# Empty compiler generated dependencies file for ablation_half_exchange.
# This may be replaced when dependencies are built.
