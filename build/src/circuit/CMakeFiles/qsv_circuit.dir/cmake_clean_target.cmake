file(REMOVE_RECURSE
  "libqsv_circuit.a"
)
