# Empty compiler generated dependencies file for qsv_circuit.
# This may be replaced when dependencies are built.
