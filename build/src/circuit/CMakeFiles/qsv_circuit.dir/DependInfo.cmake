
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/builders.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/builders.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/builders.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/gate.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/gate.cpp.o.d"
  "/root/repo/src/circuit/locality.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/locality.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/locality.cpp.o.d"
  "/root/repo/src/circuit/matrix.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/matrix.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/matrix.cpp.o.d"
  "/root/repo/src/circuit/serialize.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/serialize.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/serialize.cpp.o.d"
  "/root/repo/src/circuit/transpile/cache_blocking.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/cache_blocking.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/cache_blocking.cpp.o.d"
  "/root/repo/src/circuit/transpile/cleanup.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/cleanup.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/cleanup.cpp.o.d"
  "/root/repo/src/circuit/transpile/fusion.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/fusion.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/fusion.cpp.o.d"
  "/root/repo/src/circuit/transpile/greedy_cache_blocking.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/greedy_cache_blocking.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/greedy_cache_blocking.cpp.o.d"
  "/root/repo/src/circuit/transpile/pass_manager.cpp" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/pass_manager.cpp.o" "gcc" "src/circuit/CMakeFiles/qsv_circuit.dir/transpile/pass_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qsv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
