file(REMOVE_RECURSE
  "CMakeFiles/qsv_circuit.dir/builders.cpp.o"
  "CMakeFiles/qsv_circuit.dir/builders.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/circuit.cpp.o"
  "CMakeFiles/qsv_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/gate.cpp.o"
  "CMakeFiles/qsv_circuit.dir/gate.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/locality.cpp.o"
  "CMakeFiles/qsv_circuit.dir/locality.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/matrix.cpp.o"
  "CMakeFiles/qsv_circuit.dir/matrix.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/serialize.cpp.o"
  "CMakeFiles/qsv_circuit.dir/serialize.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/transpile/cache_blocking.cpp.o"
  "CMakeFiles/qsv_circuit.dir/transpile/cache_blocking.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/transpile/cleanup.cpp.o"
  "CMakeFiles/qsv_circuit.dir/transpile/cleanup.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/transpile/fusion.cpp.o"
  "CMakeFiles/qsv_circuit.dir/transpile/fusion.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/transpile/greedy_cache_blocking.cpp.o"
  "CMakeFiles/qsv_circuit.dir/transpile/greedy_cache_blocking.cpp.o.d"
  "CMakeFiles/qsv_circuit.dir/transpile/pass_manager.cpp.o"
  "CMakeFiles/qsv_circuit.dir/transpile/pass_manager.cpp.o.d"
  "libqsv_circuit.a"
  "libqsv_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
