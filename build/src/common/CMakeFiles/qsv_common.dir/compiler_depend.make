# Empty compiler generated dependencies file for qsv_common.
# This may be replaced when dependencies are built.
