file(REMOVE_RECURSE
  "CMakeFiles/qsv_common.dir/args.cpp.o"
  "CMakeFiles/qsv_common.dir/args.cpp.o.d"
  "CMakeFiles/qsv_common.dir/csv.cpp.o"
  "CMakeFiles/qsv_common.dir/csv.cpp.o.d"
  "CMakeFiles/qsv_common.dir/error.cpp.o"
  "CMakeFiles/qsv_common.dir/error.cpp.o.d"
  "CMakeFiles/qsv_common.dir/format.cpp.o"
  "CMakeFiles/qsv_common.dir/format.cpp.o.d"
  "CMakeFiles/qsv_common.dir/log.cpp.o"
  "CMakeFiles/qsv_common.dir/log.cpp.o.d"
  "CMakeFiles/qsv_common.dir/table.cpp.o"
  "CMakeFiles/qsv_common.dir/table.cpp.o.d"
  "libqsv_common.a"
  "libqsv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
