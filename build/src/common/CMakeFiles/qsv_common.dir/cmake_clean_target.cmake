file(REMOVE_RECURSE
  "libqsv_common.a"
)
