file(REMOVE_RECURSE
  "CMakeFiles/qsv_cluster.dir/cluster.cpp.o"
  "CMakeFiles/qsv_cluster.dir/cluster.cpp.o.d"
  "libqsv_cluster.a"
  "libqsv_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
