file(REMOVE_RECURSE
  "libqsv_cluster.a"
)
