# Empty dependencies file for qsv_cluster.
# This may be replaced when dependencies are built.
