file(REMOVE_RECURSE
  "libqsv_sv.a"
)
