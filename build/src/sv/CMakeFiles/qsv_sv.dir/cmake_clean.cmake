file(REMOVE_RECURSE
  "CMakeFiles/qsv_sv.dir/statevector.cpp.o"
  "CMakeFiles/qsv_sv.dir/statevector.cpp.o.d"
  "libqsv_sv.a"
  "libqsv_sv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_sv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
