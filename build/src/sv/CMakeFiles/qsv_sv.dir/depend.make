# Empty dependencies file for qsv_sv.
# This may be replaced when dependencies are built.
