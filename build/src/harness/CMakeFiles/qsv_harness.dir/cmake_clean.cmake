file(REMOVE_RECURSE
  "CMakeFiles/qsv_harness.dir/experiments.cpp.o"
  "CMakeFiles/qsv_harness.dir/experiments.cpp.o.d"
  "CMakeFiles/qsv_harness.dir/validation.cpp.o"
  "CMakeFiles/qsv_harness.dir/validation.cpp.o.d"
  "libqsv_harness.a"
  "libqsv_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
