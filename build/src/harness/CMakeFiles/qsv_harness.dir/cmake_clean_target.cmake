file(REMOVE_RECURSE
  "libqsv_harness.a"
)
