# Empty compiler generated dependencies file for qsv_harness.
# This may be replaced when dependencies are built.
