file(REMOVE_RECURSE
  "libqsv_machine.a"
)
