# Empty dependencies file for qsv_machine.
# This may be replaced when dependencies are built.
