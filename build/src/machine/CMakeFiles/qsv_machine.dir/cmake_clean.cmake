file(REMOVE_RECURSE
  "CMakeFiles/qsv_machine.dir/config.cpp.o"
  "CMakeFiles/qsv_machine.dir/config.cpp.o.d"
  "CMakeFiles/qsv_machine.dir/job.cpp.o"
  "CMakeFiles/qsv_machine.dir/job.cpp.o.d"
  "CMakeFiles/qsv_machine.dir/machine.cpp.o"
  "CMakeFiles/qsv_machine.dir/machine.cpp.o.d"
  "CMakeFiles/qsv_machine.dir/slurm.cpp.o"
  "CMakeFiles/qsv_machine.dir/slurm.cpp.o.d"
  "libqsv_machine.a"
  "libqsv_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
