file(REMOVE_RECURSE
  "libqsv_perf.a"
)
