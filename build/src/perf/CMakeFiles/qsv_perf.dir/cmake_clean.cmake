file(REMOVE_RECURSE
  "CMakeFiles/qsv_perf.dir/cost_model.cpp.o"
  "CMakeFiles/qsv_perf.dir/cost_model.cpp.o.d"
  "CMakeFiles/qsv_perf.dir/runner.cpp.o"
  "CMakeFiles/qsv_perf.dir/runner.cpp.o.d"
  "libqsv_perf.a"
  "libqsv_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
