# Empty dependencies file for qsv_perf.
# This may be replaced when dependencies are built.
