file(REMOVE_RECURSE
  "libqsv_dist.a"
)
