# Empty dependencies file for qsv_dist.
# This may be replaced when dependencies are built.
