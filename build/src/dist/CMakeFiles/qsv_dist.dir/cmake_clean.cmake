file(REMOVE_RECURSE
  "CMakeFiles/qsv_dist.dir/dist_statevector.cpp.o"
  "CMakeFiles/qsv_dist.dir/dist_statevector.cpp.o.d"
  "CMakeFiles/qsv_dist.dir/observables.cpp.o"
  "CMakeFiles/qsv_dist.dir/observables.cpp.o.d"
  "CMakeFiles/qsv_dist.dir/plan.cpp.o"
  "CMakeFiles/qsv_dist.dir/plan.cpp.o.d"
  "CMakeFiles/qsv_dist.dir/snapshot.cpp.o"
  "CMakeFiles/qsv_dist.dir/snapshot.cpp.o.d"
  "CMakeFiles/qsv_dist.dir/trace.cpp.o"
  "CMakeFiles/qsv_dist.dir/trace.cpp.o.d"
  "libqsv_dist.a"
  "libqsv_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
