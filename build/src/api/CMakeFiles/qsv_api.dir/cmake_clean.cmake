file(REMOVE_RECURSE
  "CMakeFiles/qsv_api.dir/quest_compat.cpp.o"
  "CMakeFiles/qsv_api.dir/quest_compat.cpp.o.d"
  "libqsv_api.a"
  "libqsv_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
