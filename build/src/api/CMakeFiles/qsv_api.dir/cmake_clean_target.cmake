file(REMOVE_RECURSE
  "libqsv_api.a"
)
