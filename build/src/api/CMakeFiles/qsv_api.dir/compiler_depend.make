# Empty compiler generated dependencies file for qsv_api.
# This may be replaced when dependencies are built.
