file(REMOVE_RECURSE
  "CMakeFiles/qsv.dir/qsv_cli.cpp.o"
  "CMakeFiles/qsv.dir/qsv_cli.cpp.o.d"
  "qsv"
  "qsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
