# Empty compiler generated dependencies file for ising_dynamics.
# This may be replaced when dependencies are built.
