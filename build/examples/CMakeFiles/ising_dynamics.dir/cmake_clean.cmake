file(REMOVE_RECURSE
  "CMakeFiles/ising_dynamics.dir/ising_dynamics.cpp.o"
  "CMakeFiles/ising_dynamics.dir/ising_dynamics.cpp.o.d"
  "ising_dynamics"
  "ising_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ising_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
