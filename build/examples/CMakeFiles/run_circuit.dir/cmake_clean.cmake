file(REMOVE_RECURSE
  "CMakeFiles/run_circuit.dir/run_circuit.cpp.o"
  "CMakeFiles/run_circuit.dir/run_circuit.cpp.o.d"
  "run_circuit"
  "run_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
