# Empty dependencies file for run_circuit.
# This may be replaced when dependencies are built.
