file(REMOVE_RECURSE
  "CMakeFiles/phase_estimation.dir/phase_estimation.cpp.o"
  "CMakeFiles/phase_estimation.dir/phase_estimation.cpp.o.d"
  "phase_estimation"
  "phase_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
