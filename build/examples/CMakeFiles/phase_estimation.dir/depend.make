# Empty dependencies file for phase_estimation.
# This may be replaced when dependencies are built.
