# Empty compiler generated dependencies file for qft_cache_blocking.
# This may be replaced when dependencies are built.
