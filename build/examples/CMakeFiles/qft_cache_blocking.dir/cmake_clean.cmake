file(REMOVE_RECURSE
  "CMakeFiles/qft_cache_blocking.dir/qft_cache_blocking.cpp.o"
  "CMakeFiles/qft_cache_blocking.dir/qft_cache_blocking.cpp.o.d"
  "qft_cache_blocking"
  "qft_cache_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qft_cache_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
